"""Tests for the ablation driver and its CLI wiring."""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablation import VARIANTS, run_ablation
from tests.experiments.test_experiments import TINY


def test_variant_labels_unique():
    labels = [label for label, _ in VARIANTS]
    assert len(labels) == len(set(labels))
    assert "full" in labels


@pytest.fixture(scope="module")
def ablation_result():
    return run_ablation(TINY, seed=5)


def test_all_cells_present(ablation_result):
    for label, _ in VARIANTS:
        for topology in ("brite", "sparse"):
            value = ablation_result.errors[(label, topology)]
            assert not math.isnan(value)
            assert 0.0 <= value <= 1.0


def test_table_renders(ablation_result):
    table = ablation_result.to_table()
    assert "full" in table
    assert "sparse" in table


def test_cli_ablation_help():
    from repro.cli import _build_parser

    parser = _build_parser()
    args = parser.parse_args(["ablation", "--seed", "9"])
    assert args.command == "ablation"
    assert args.seed == 9
