"""Tests for the real-topology (dataset x scenario x estimator) sweep.

Includes the PR's acceptance gate: every registered dataset and scenario
runs through ``campaign`` with ``workers=4`` bit-identical to serial,
entirely from bundled fixture files (no network access).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import dataset_names, load_dataset
from repro.experiments.config import TINY
from repro.experiments.realworld import (
    ESTIMATOR_ORDER,
    merge_realworld,
    realworld_specs,
    realworld_trial,
    run_realworld,
)
from repro.runner import run_trials
from repro.runner.campaign import CampaignSpec, run_campaign
from repro.simulation.library import get_scenario, scenario_names


def test_specs_cover_supported_grid():
    specs = realworld_specs(TINY, seed=3, oracle=True)
    cells = {(s.topology, s.scenario, s.estimator) for s in specs}
    assert len(cells) == len(specs)
    datasets_seen = {s.topology for s in specs}
    scenarios_seen = {s.scenario for s in specs}
    # Every registered dataset and scenario contributes to the sweep.
    assert datasets_seen == set(dataset_names())
    assert scenarios_seen == set(scenario_names())
    # Unsupported combos are skipped, supported ones carry all estimators.
    networks = {name: load_dataset(name) for name in dataset_names()}
    for dataset, network in networks.items():
        for scenario in scenario_names():
            expected = get_scenario(scenario).supports(network)
            present = {
                s.estimator
                for s in specs
                if s.topology == dataset and s.scenario == scenario
            }
            assert present == (set(ESTIMATOR_ORDER) if expected else set())


def test_specs_reject_unknown_names():
    with pytest.raises(Exception, match="unknown dataset"):
        realworld_specs(TINY, 3, datasets=["atlantis"])
    with pytest.raises(Exception, match="unknown scenario"):
        realworld_specs(TINY, 3, scenarios=["sharknado"])
    with pytest.raises(ValueError, match="unknown estimator"):
        realworld_specs(TINY, 3, estimators=["Magic"])


def test_specs_reject_empty_sweep():
    # no_independence needs correlated groups; caida-asrel has none.
    with pytest.raises(ValueError, match="empty"):
        realworld_specs(
            TINY, 3, datasets=["caida-asrel"], scenarios=["no_independence"]
        )


def test_single_cell_trial_and_merge():
    specs = realworld_specs(
        TINY,
        seed=3,
        oracle=True,
        datasets=["saved-peering"],
        scenarios=["gravity"],
    )
    assert len(specs) == len(ESTIMATOR_ORDER)
    results = run_trials(realworld_trial, specs, workers=1)
    merged = merge_realworld(results)
    assert merged.datasets() == ["saved-peering"]
    assert merged.scenarios() == ["gravity"]
    for estimator in ESTIMATOR_ORDER:
        metrics = merged.rows[("saved-peering", "gravity", estimator)]
        assert 0.0 <= metrics.mean_absolute_error <= 1.0
    table = merged.to_table("saved-peering")
    assert "gravity" in table and "Correlation-complete" in table


def test_run_realworld_restricted_sweep():
    result = run_realworld(
        TINY,
        seed=3,
        oracle=True,
        datasets=["abilene"],
        scenarios=["diurnal", "maintenance"],
        workers=1,
    )
    assert result.datasets() == ["abilene"]
    assert result.scenarios() == ["diurnal", "maintenance"]
    assert result.dataset_stats["abilene"]["num_links"] == 21.0


def test_full_grid_campaign_workers4_bit_identical_to_serial():
    """Acceptance: the whole registry, through campaign, sharded = serial."""
    serial = run_campaign(
        CampaignSpec(
            campaign="realworld",
            scale="tiny",
            seed=3,
            oracle=True,
            workers=1,
        )
    )
    parallel = run_campaign(
        CampaignSpec(
            campaign="realworld",
            scale="tiny",
            seed=3,
            oracle=True,
            workers=4,
        )
    )
    assert serial.num_trials == parallel.num_trials
    a = serial.replicates[0].result
    b = parallel.replicates[0].result
    assert set(a.rows) == set(b.rows)
    # The grid really covered every dataset and scenario.
    assert a.datasets() == dataset_names()
    assert a.scenarios() == scenario_names()
    for key, serial_metrics in a.rows.items():
        parallel_metrics = b.rows[key]
        assert (
            serial_metrics.mean_absolute_error
            == parallel_metrics.mean_absolute_error
        )
        assert np.array_equal(serial_metrics.errors, parallel_metrics.errors)
        assert serial_metrics.num_links_scored == parallel_metrics.num_links_scored
    assert serial.replicates[0].rendered == parallel.replicates[0].rendered
    assert serial.replicates[0].summary == parallel.replicates[0].summary


def test_campaign_spec_filters_validated():
    with pytest.raises(ValueError, match="does not accept"):
        CampaignSpec(campaign="figure4", dataset="abilene")
    with pytest.raises(ValueError, match="unknown dataset"):
        CampaignSpec(campaign="realworld", dataset="atlantis")
    with pytest.raises(ValueError, match="unknown scenario"):
        CampaignSpec(campaign="realworld", scenario="sharknado")
    spec = CampaignSpec(
        campaign="realworld", dataset="abilene,saved-peering", scenario="gravity"
    )
    assert spec.dataset == "abilene,saved-peering"


def test_campaign_filters_restrict_the_sweep():
    outcome = run_campaign(
        CampaignSpec(
            campaign="realworld",
            scale="tiny",
            seed=3,
            oracle=True,
            workers=1,
            dataset="saved-peering",
            scenario="gravity,cascade",
        )
    )
    result = outcome.replicates[0].result
    assert result.datasets() == ["saved-peering"]
    assert result.scenarios() == ["cascade", "gravity"]
    assert outcome.to_json_dict()["dataset"] == "saved-peering"
