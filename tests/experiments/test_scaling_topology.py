"""The scaling-topology study: spec grid, trial cells, and the campaign.

Runs the real trial function at a deliberately small node count — the
full 1k/10k sweep lives in ``benchmarks/`` and CI's scale-smoke job —
and pins the properties the campaign gates on: dense/sparse digests
agree (bit-identity), structure bytes favour sparse, and the outcome
summary carries the ratio the CI assertion reads.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import scale_by_name
from repro.experiments.scaling_topology import (
    MODES,
    ScalingTopologyResult,
    ScalingTopologyRow,
    merge_scaling_topology,
    run_scaling_topology,
    scaling_topology_specs,
)
from repro.runner.campaign import CAMPAIGNS


@pytest.fixture(scope="module")
def result() -> ScalingTopologyResult:
    return run_scaling_topology(
        scale_by_name("tiny"), seed=17, sizes=[200], workers=1, executor=None
    )


def test_specs_cover_every_size_and_mode():
    specs = scaling_topology_specs(scale_by_name("tiny"), seed=17)
    assert [spec.params["num_nodes"] for spec in specs] == [200, 200, 500, 500]
    assert [spec.params["mode"] for spec in specs] == list(MODES) * 2
    assert all(spec.campaign == "scaling-topology" for spec in specs)
    # Explicit sizes override the scale's defaults.
    small = scaling_topology_specs(scale_by_name("paper"), seed=17, sizes=[64])
    assert [spec.params["num_nodes"] for spec in small] == [64, 64]


def test_cells_are_bit_identical_and_sparse_is_lighter(result):
    assert result.bit_identical()
    dense = result.cell(200, "dense")
    sparse = result.cell(200, "sparse")
    assert dense.route_digest == sparse.route_digest
    assert dense.estimate_digest == sparse.estimate_digest
    # Same derived system in both modes.
    assert dense.num_links == sparse.num_links
    assert dense.num_paths == sparse.num_paths
    assert dense.num_equations == sparse.num_equations
    # The tentpole: construction + equation storage shrink together.
    assert dense.construction_bytes > sparse.construction_bytes
    assert dense.equation_storage_bytes > sparse.equation_storage_bytes
    assert result.memory_ratios()[200] >= 3.0
    assert dense.peak_traced_bytes > 0 and sparse.peak_traced_bytes > 0


def test_table_and_campaign_summary_expose_the_gate(result):
    table = result.to_table()
    assert "struct MB" in table and "estimate digest" in table
    definition = CAMPAIGNS["scaling-topology"]
    summary = definition.summarize(result)
    assert summary["bit_identical"] is True
    assert summary["memory_ratios"]["200"] >= 3.0
    (dense_row, sparse_row) = summary["rows"]
    assert dense_row["structure_bytes"] > sparse_row["structure_bytes"]
    rendered = definition.render(result)
    assert "bit-identical across modes: True" in rendered


def test_bit_identical_requires_both_modes():
    row = ScalingTopologyRow(
        num_nodes=10,
        mode="dense",
        num_links=1,
        num_paths=1,
        num_unknowns=1,
        num_equations=1,
        build_seconds=0.0,
        fit_seconds=0.0,
        construction_bytes=1,
        equation_storage_bytes=1,
        peak_traced_bytes=1,
        rss_bytes=1.0,
        route_digest="a",
        estimate_digest="b",
    )
    lonely = ScalingTopologyResult(rows=[row])
    assert not lonely.bit_identical()  # nothing was actually compared
    assert lonely.memory_ratios() == {}


def test_merge_orders_rows(result):
    class _Trial:
        def __init__(self, payload):
            self.payload = payload

    shuffled = merge_scaling_topology(
        [_Trial(row) for row in reversed(result.rows)]
    )
    assert [(r.num_nodes, r.mode) for r in shuffled.rows] == [
        (200, "dense"),
        (200, "sparse"),
    ]
