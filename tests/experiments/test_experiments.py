"""Integration tests for the experiment drivers and the CLI.

Full-size experiment shapes are checked by the benchmark harness; here the
drivers are run on tiny instances to verify plumbing (rows present, tables
render, CLI wires up).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SCALES, TINY, scale_by_name
from repro.experiments.figure3 import SCENARIO_ORDER, run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.scaling import run_algorithm1_scaling


def test_scale_lookup():
    assert scale_by_name("small").name == "small"
    assert scale_by_name("paper").name == "paper"
    with pytest.raises(KeyError):
        scale_by_name("bogus")
    assert scale_by_name("tiny").name == "tiny"
    assert set(SCALES) == {"tiny", "small", "paper"}


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(TINY, seed=1)


@pytest.fixture(scope="module")
def figure4_result():
    return run_figure4(TINY, seed=2)


def test_figure3_all_rows_present(figure3_result):
    algorithms = {
        "Sparsity",
        "Bayesian-Independence",
        "Bayesian-Correlation",
    }
    for scenario in SCENARIO_ORDER:
        for algorithm in algorithms:
            metrics = figure3_result.rows[(scenario, algorithm)]
            assert 0.0 <= metrics.detection_rate <= 1.0
            assert 0.0 <= metrics.false_positive_rate <= 1.0


def test_figure3_tables_render(figure3_result):
    detection = figure3_result.to_table("detection")
    fp = figure3_result.to_table("fp")
    assert "Random Congestion" in detection
    assert "Sparse Topology" in fp


def test_figure3_topology_stats(figure3_result):
    assert "brite" in figure3_result.topology_stats
    assert "sparse" in figure3_result.topology_stats


def test_figure4_all_rows_present(figure4_result):
    for topology in ("brite", "sparse"):
        for scenario in (
            "Random Congestion",
            "Concentrated Congestion",
            "No Independence",
        ):
            for estimator in (
                "Independence",
                "Correlation-heuristic",
                "Correlation-complete",
            ):
                metrics = figure4_result.rows[(topology, scenario, estimator)]
                assert 0.0 <= metrics.mean_absolute_error <= 1.0


def test_figure4_cdf(figure4_result):
    grid, cdf = figure4_result.cdf(
        "sparse", "No Independence", "Correlation-complete", points=21
    )
    assert grid.shape == cdf.shape == (21,)
    assert cdf[-1] == pytest.approx(1.0)


def test_figure4_subset_rows(figure4_result):
    assert set(figure4_result.subset_rows) == {"brite", "sparse"}
    tables = figure4_result.to_subset_table()
    assert "brite" in tables


def test_figure4_tables_render(figure4_result):
    assert "No Independence" in figure4_result.to_table("brite")
    assert "Correlation-complete" in figure4_result.to_table("sparse")


def test_scaling_driver():
    result = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1, 2])
    assert len(result.rows) == 2
    assert result.rows[0].num_unknowns <= result.rows[1].num_unknowns
    assert "naive bound" in result.to_table()


def test_cli_table2(capsys):
    from repro.cli import main

    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Sparsity" in out
    assert "Identifiability++" in out
