"""Tests for the closed-loop mitigation sweep and its campaign wiring.

Includes the PR's acceptance gates: the sweep runs the closed loop over
multiple scenario families, reduces residual congestion versus the no-op
control arm, and is bit-identical across serial, thread, and process
executors.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import TINY
from repro.experiments.mitigation import (
    DEFAULT_SCENARIOS,
    ESTIMATOR_ORDER,
    merge_mitigation,
    mitigation_specs,
    mitigation_trial,
    run_mitigation,
)
from repro.mitigation.policies import policy_names
from repro.runner import run_trials
from repro.runner.campaign import CAMPAIGNS, CampaignSpec, run_campaign


def test_specs_cover_full_grid():
    specs = mitigation_specs(TINY, seed=13)
    cells = {
        (s.topology, s.scenario, s.params["policy"], s.estimator) for s in specs
    }
    assert len(cells) == len(specs)
    assert {s.topology for s in specs} == {"brite"}
    assert {s.scenario for s in specs} == set(DEFAULT_SCENARIOS)
    assert {s.estimator for s in specs} == set(ESTIMATOR_ORDER)
    assert {s.params["policy"] for s in specs} == set(policy_names())
    # Pre-experiment sharing needs every cell of a (topology, scenario)
    # block on the same shard: the group key pins that.
    for spec in specs:
        assert spec.group == (13, spec.topology, spec.scenario)
        assert spec.index == specs.index(spec)


def test_specs_reject_unknown_names():
    with pytest.raises(ValueError, match="[Uu]nknown estimator"):
        mitigation_specs(TINY, 13, estimators=["Magic"])
    with pytest.raises(ValueError, match="unknown mitigation policy"):
        mitigation_specs(TINY, 13, policies=["warp-drive"])
    with pytest.raises(Exception, match="unknown scenario"):
        mitigation_specs(TINY, 13, scenarios=["sharknado"])
    with pytest.raises(Exception, match="unknown dataset"):
        mitigation_specs(TINY, 13, datasets=["atlantis"])


def test_specs_reject_empty_sweep():
    # no_independence needs correlated groups; caida-asrel has none.
    with pytest.raises(ValueError, match="empty"):
        mitigation_specs(
            TINY, 13, datasets=["caida-asrel"], scenarios=["no_independence"]
        )


def test_trial_and_merge_single_cell_block():
    specs = mitigation_specs(
        TINY, seed=13, scenarios=["random"], estimators=["Independence"]
    )
    assert len(specs) == len(policy_names())
    merged = merge_mitigation(run_trials(mitigation_trial, specs, workers=1))
    assert merged.topologies() == ["brite"]
    assert merged.scenarios() == ["random"]
    assert merged.policies() == policy_names()
    noop = merged.rows[("brite", "random", "noop", "Independence")]
    assert noop["reduction"] == 0.0
    assert noop["paths_disturbed"] == 0
    table = merged.to_table("brite", "random")
    assert "noop" in table and "corropt-greedy" in table


def test_sweep_reduces_residual_congestion_vs_noop():
    """Acceptance: on every scenario family the closed loop beats no-op."""
    result = run_mitigation(
        TINY,
        seed=13,
        scenarios=["random", "gravity", "cascade"],
        estimators=["Independence"],
        workers=1,
    )
    assert result.scenarios() == ["cascade", "gravity", "random"]
    for scenario in result.scenarios():
        noop = result.residual("brite", scenario, "noop", "Independence")
        best = min(
            result.residual("brite", scenario, policy, "Independence")
            for policy in result.policies()
            if policy != "noop"
        )
        assert best < noop


def test_sweep_bit_identical_across_executors():
    """Acceptance: serial, thread, and process shards merge identically."""
    kwargs = dict(
        scale=TINY,
        seed=13,
        scenarios=["random", "gravity"],
        estimators=["Independence"],
    )
    serial = run_mitigation(workers=1, **kwargs)
    threaded = run_mitigation(workers=3, executor="thread", **kwargs)
    sharded = run_mitigation(workers=3, executor="process", **kwargs)
    assert serial.rows == threaded.rows
    assert serial.rows == sharded.rows


def test_campaign_registered():
    definition = CAMPAIGNS["mitigation"]
    assert definition.accepts_filters
    assert definition.accepts_policies
    assert definition.default_seed == 13
    # The only policy-accepting campaign so far.
    others = [d for name, d in CAMPAIGNS.items() if name != "mitigation"]
    assert not any(d.accepts_policies for d in others)


def test_campaign_spec_policy_validation():
    with pytest.raises(ValueError, match="does not accept a policy"):
        CampaignSpec(campaign="figure4", policy="noop")
    with pytest.raises(ValueError, match="unknown mitigation policy"):
        CampaignSpec(campaign="mitigation", policy="warp-drive")
    spec = CampaignSpec(campaign="mitigation", policy="noop,corropt-greedy")
    assert spec.policy == "noop,corropt-greedy"


def test_run_campaign_mitigation_restricted():
    outcome = run_campaign(
        CampaignSpec(
            campaign="mitigation",
            scale="tiny",
            seed=13,
            workers=2,
            scenario="random",
            estimator="Independence",
            policy="noop,corropt-greedy",
        )
    )
    result = outcome.replicates[0].result
    assert result.policies() == ["noop", "corropt-greedy"]
    assert result.estimators() == ["Independence"]
    noop = result.residual("brite", "random", "noop", "Independence")
    acted = result.residual("brite", "random", "corropt-greedy", "Independence")
    assert acted <= noop
    rendered = outcome.replicates[0].rendered
    assert "residual path-congestion rate" in rendered
    summary = outcome.replicates[0].summary
    assert any("corropt-greedy" in key for key in summary["cells"])
    assert outcome.to_json_dict()["policy"] == "noop,corropt-greedy"
