"""CLI smoke tests: every subcommand through ``main(argv)`` at SMALL scale.

These guard the wiring (argument parsing, driver dispatch, table
rendering) so a CLI regression fails tier-1; the numbers themselves are
covered by the driver tests and the benchmark harness.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert "repro-tomography" in capsys.readouterr().out


def test_no_command_is_an_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_figure3(capsys):
    assert main(["figure3", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3(a)" in out
    assert "Figure 3(b)" in out
    assert "Sparse Topology" in out


def test_figure4(capsys):
    assert main(["figure4", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    for panel in ("4(a)", "4(b)", "4(c)", "4(d)"):
        assert panel in out
    assert "Correlation-complete" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "Sparsity" in out


def test_scaling_parallel(capsys):
    assert main(["scaling", "--scale", "small", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "Algorithm 1 scaling" in out
    assert "naive bound" in out


def test_ablation(capsys):
    assert main(["ablation", "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "ablation" in out
    assert "no redundancy" in out


def test_monitor(capsys, tmp_path):
    checkpoint = tmp_path / "engine.json"
    assert (
        main(
            [
                "monitor",
                "--scale",
                "small",
                "--intervals",
                "48",
                "--window",
                "32",
                "--chunk",
                "16",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "monitoring" in out
    assert "refits" in out
    assert checkpoint.exists()


def test_campaign_by_name(capsys, tmp_path):
    assert (
        main(
            [
                "campaign",
                "scaling",
                "--workers",
                "2",
                "--output",
                str(tmp_path / "results"),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "campaign scaling" in out
    assert "shard" in out
    assert "results written to" in out
    written = list((tmp_path / "results").glob("*.json"))
    assert len(written) == 1
    assert json.loads(written[0].read_text())["campaign"] == "scaling"


def test_campaign_from_json_spec(capsys, tmp_path):
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(
        json.dumps({"campaign": "scaling", "scale": "small", "seed": 7, "workers": 2})
    )
    assert main(["campaign", str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "== seed 7 ==" in out
    assert "naive bound" in out


def test_campaign_unknown_name():
    with pytest.raises(SystemExit, match="unknown campaign"):
        main(["campaign", "figure9"])


def test_campaign_list(capsys):
    assert main(["campaign", "--list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "figure3",
        "figure4",
        "scaling",
        "ablation",
        "realworld",
        "mitigation",
    ):
        assert name in out


def test_campaign_without_target_or_list():
    with pytest.raises(SystemExit, match="--list"):
        main(["campaign"])


def test_campaign_realworld_with_filters(capsys):
    assert (
        main(
            [
                "campaign",
                "realworld",
                "--scale",
                "tiny",
                "--oracle",
                "--dataset",
                "saved-peering",
                "--scenario",
                "gravity",
                "--workers",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "saved-peering" in out
    assert "gravity" in out
    assert "Correlation-complete" in out


def test_campaign_realworld_with_estimator_filter(capsys):
    assert (
        main(
            [
                "campaign",
                "realworld",
                "--scale",
                "tiny",
                "--oracle",
                "--dataset",
                "saved-peering",
                "--scenario",
                "gravity",
                # Alias resolution: canonicalised through the registry.
                "--estimator",
                "independence",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Independence" in out
    # One dataset x one scenario x one estimator = a single trial.
    assert "1 trial(s)" in out


def test_campaign_filters_rejected_for_figure_sweeps():
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "figure4", "--dataset", "abilene"])
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "figure4", "--estimator", "independence"])
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "realworld", "--estimator", "bogus"])


def test_datasets_list(capsys):
    assert main(["datasets", "list"]) == 0
    out = capsys.readouterr().out
    assert "abilene" in out
    assert "caida-asrel" in out
    assert "(generated)" in out


def test_datasets_info(capsys):
    assert main(["datasets", "info", "abilene"]) == 0
    out = capsys.readouterr().out
    assert "gml" in out
    assert "num_links" in out


def test_datasets_info_unknown_name():
    with pytest.raises(SystemExit, match="unknown dataset"):
        main(["datasets", "info", "atlantis"])


def test_datasets_validate(capsys):
    assert main(["datasets", "validate"]) == 0
    out = capsys.readouterr().out
    assert "all datasets load" in out
    assert "FAIL" not in out


def test_scenarios_list(capsys):
    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("diurnal", "gravity", "cascade", "flash_crowd", "maintenance"):
        assert name in out


def test_scenarios_info(capsys):
    assert main(["scenarios", "info", "maintenance"]) == 0
    out = capsys.readouterr().out
    assert "maintenance_marginal" in out


def test_estimators_list(capsys):
    assert main(["estimators", "list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "Independence",
        "Correlation-heuristic",
        "Correlation-complete",
        "Correlation-complete (no redundancy)",
    ):
        assert name in out
    assert "paper legend order" in out


def test_estimators_info(capsys):
    assert main(["estimators", "info", "complete"]) == 0
    out = capsys.readouterr().out
    assert "Correlation-complete" in out
    assert "prune -> frequency -> discover -> assemble -> solve -> build_model" in out
    assert "cost multiplier" in out


def test_estimators_info_unknown_name():
    with pytest.raises(SystemExit, match="unknown estimator"):
        main(["estimators", "info", "wat"])
    with pytest.raises(SystemExit, match="provide an estimator name"):
        main(["estimators", "info"])


def test_monitor_estimator_flag(capsys):
    assert (
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "abilene",
                "--scenario",
                "diurnal",
                "--estimator",
                "independence",
                "--intervals",
                "48",
                "--window",
                "32",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "estimator Independence" in out


def test_monitor_unknown_estimator_errors():
    with pytest.raises(SystemExit, match="unknown estimator"):
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "abilene",
                "--estimator",
                "bogus",
            ]
        )


def test_monitor_dataset_scenario(capsys):
    assert (
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "abilene",
                "--scenario",
                "diurnal",
                "--intervals",
                "48",
                "--window",
                "32",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "abilene" in out
    assert "diurnal" in out
    assert "refits" in out


def test_monitor_unsupported_scenario_errors():
    # caida-asrel has no correlated link groups; no_stationarity needs them.
    with pytest.raises(SystemExit, match="correlated link groups"):
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "caida-asrel",
                "--scenario",
                "no_stationarity",
            ]
        )


def test_campaign_invalid_overrides_rejected():
    # CLI overrides are re-validated; a zero-replicate sweep must not
    # silently succeed as a no-op.
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "scaling", "--replicates", "0"])
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "scaling", "--workers", "-1"])


def test_kernels_list(capsys):
    assert main(["kernels", "list"]) == 0
    out = capsys.readouterr().out
    assert "Frequency kernels" in out
    assert "numpy" in out
    assert "numba" in out
    assert "requested:" in out
    assert "REPRO_KERNEL" in out
    # Exactly one kernel is marked active.
    assert sum("*" in line for line in out.splitlines()) == 1


def test_kernels_list_bench(capsys):
    assert main(["kernels", "list", "--bench"]) == 0
    out = capsys.readouterr().out
    assert "Bench (ms)" in out


def test_kernels_info(capsys):
    assert main(["kernels", "info", "numpy"]) == 0
    out = capsys.readouterr().out
    assert "numpy:" in out
    assert "releases the GIL: False" in out
    assert "available: yes" in out
    assert "micro-benchmark" in out
    assert main(["kernels", "info", "numba"]) == 0
    out = capsys.readouterr().out
    assert "numba:" in out
    assert "releases the GIL: True" in out


def test_kernels_info_unknown_name():
    with pytest.raises(SystemExit, match="unknown kernel"):
        main(["kernels", "info", "simd"])
    with pytest.raises(SystemExit, match="provide a kernel name"):
        main(["kernels", "info"])


def test_figure_executor_flag(capsys):
    assert (
        main(
            [
                "scaling",
                "--scale",
                "tiny",
                "--workers",
                "2",
                "--executor",
                "thread",
            ]
        )
        == 0
    )
    assert "Algorithm 1 scaling" in capsys.readouterr().out


def test_campaign_executor_flag(capsys):
    assert (
        main(
            [
                "campaign",
                "scaling",
                "--scale",
                "tiny",
                "--workers",
                "2",
                "--executor",
                "thread",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Algorithm 1 scaling" in out


def test_monitor_kernel_flag(capsys):
    assert (
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "abilene",
                "--scenario",
                "diurnal",
                "--intervals",
                "48",
                "--window",
                "32",
                "--kernel",
                "numpy",
            ]
        )
        == 0
    )
    assert "refits" in capsys.readouterr().out


def test_policies_list(capsys):
    assert main(["policies", "list"]) == 0
    out = capsys.readouterr().out
    assert "Registered mitigation policies" in out
    for name in ("noop", "ecmp-split", "corropt-greedy"):
        assert name in out


def test_policies_info(capsys):
    assert main(["policies", "info", "corropt-greedy"]) == 0
    out = capsys.readouterr().out
    assert "corropt-greedy:" in out
    assert "min_active_fraction" in out


def test_policies_info_unknown_name():
    with pytest.raises(SystemExit, match="unknown mitigation policy"):
        main(["policies", "info", "warp-drive"])
    with pytest.raises(SystemExit, match="provide a policy name"):
        main(["policies", "info"])


def test_mitigate_smoke(capsys, tmp_path):
    out_dir = tmp_path / "loop"
    assert (
        main(
            [
                "mitigate",
                "--scale",
                "tiny",
                "--output",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "closed loop on" in out
    assert "path congestion:" in out
    assert "paths disturbed:" in out
    plan = json.loads((out_dir / "plan.json").read_text())
    report = json.loads((out_dir / "report.json").read_text())
    assert plan["policy"] == "corropt-greedy"
    assert report["policy"] == "corropt-greedy"
    assert report["estimator"] == "Independence"
    assert report["post_congestion_rate"] <= report["pre_congestion_rate"]


def test_mitigate_unknown_names_error():
    with pytest.raises(SystemExit, match="unknown mitigation policy"):
        main(["mitigate", "--scale", "tiny", "--policy", "warp-drive"])
    with pytest.raises(SystemExit, match="unknown estimator"):
        main(["mitigate", "--scale", "tiny", "--estimator", "bogus"])


def test_mitigate_bad_output_fails_fast(tmp_path):
    clobber = tmp_path / "file.json"
    clobber.write_text("{}")
    # Validation runs before any simulation, so this errors immediately.
    with pytest.raises(SystemExit, match="not a directory"):
        main(["mitigate", "--scale", "tiny", "--output", str(clobber)])


def test_campaign_mitigation_with_policy_filter(capsys):
    assert (
        main(
            [
                "campaign",
                "mitigation",
                "--scale",
                "tiny",
                "--scenario",
                "random",
                "--estimator",
                "Independence",
                "--policy",
                "noop,corropt-greedy",
                "--workers",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "campaign mitigation" in out
    assert "residual path-congestion rate" in out
    assert "corropt-greedy" in out


def test_campaign_policy_rejected_for_non_mitigation():
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "scaling", "--policy", "noop"])
    with pytest.raises(SystemExit, match="invalid campaign options"):
        main(["campaign", "mitigation", "--policy", "warp-drive"])


def test_campaign_bad_output_fails_fast(tmp_path):
    clobber = tmp_path / "occupied"
    clobber.write_text("not a directory")
    # The output dir is validated before the sweep starts, not after.
    with pytest.raises(SystemExit, match="not a directory"):
        main(["campaign", "scaling", "--output", str(clobber)])


def test_monitor_unknown_kernel_errors():
    with pytest.raises(SystemExit, match="unknown kernel"):
        main(
            [
                "monitor",
                "--scale",
                "tiny",
                "--dataset",
                "abilene",
                "--scenario",
                "diurnal",
                "--kernel",
                "simd",
            ]
        )
