"""Unit tests for tracing spans and the JSONL trace sink."""

from __future__ import annotations

import os
import time

import pytest

from repro import obs


def _trace(tmp_path, name="t.jsonl"):
    return tmp_path / name


def _run_and_load(tmp_path, body):
    path = _trace(tmp_path)
    with obs.use_mode("trace", path):
        body()
        obs.flush()
    return obs.load_events(path)


def test_off_mode_emits_nothing_but_still_times(tmp_path):
    path = _trace(tmp_path)
    with obs.use_mode("off", path):
        with obs.span("work") as sp:
            time.sleep(0.01)
    assert sp.elapsed >= 0.01
    assert sp.span_id is None
    assert not path.exists()


def test_trace_mode_emits_valid_nested_spans(tmp_path):
    def body():
        with obs.span("outer", layer="test"):
            with obs.span("inner"):
                pass

    events = _run_and_load(tmp_path, body)
    assert obs.validate_events(events) == []
    by_name = {e["name"]: e for e in events}
    # Inner exits (and is written) first; its parent is the outer span.
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["outer"]["parent"] is None
    assert by_name["outer"]["attrs"] == {"layer": "test"}
    assert all(e["pid"] == os.getpid() for e in events)
    assert by_name["outer"]["dur"] >= by_name["inner"]["dur"]


def test_exception_marks_span_status_error(tmp_path):
    def body():
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")

    (event,) = _run_and_load(tmp_path, body)
    assert event["status"] == "error"


def test_annotate_attaches_late_attributes(tmp_path):
    def body():
        with obs.span("work") as sp:
            sp.annotate(rows=42)

    (event,) = _run_and_load(tmp_path, body)
    assert event["attrs"] == {"rows": 42}


def test_parent_scope_reroots_fresh_contexts(tmp_path):
    def body():
        with obs.parent_scope("dead:beef"):
            with obs.span("worker"):
                pass
        with obs.parent_scope(None):  # no-op
            with obs.span("rootless"):
                pass

    events = _run_and_load(tmp_path, body)
    by_name = {e["name"]: e for e in events}
    assert by_name["worker"]["parent"] == "dead:beef"
    assert by_name["rootless"]["parent"] is None


def test_explicit_parent_overrides_stack(tmp_path):
    def body():
        with obs.span("outer"):
            with obs.span("adopted", parent_id="feed:1"):
                pass

    events = _run_and_load(tmp_path, body)
    by_name = {e["name"]: e for e in events}
    assert by_name["adopted"]["parent"] == "feed:1"


def test_point_events_are_zero_duration(tmp_path):
    def body():
        with obs.span("outer"):
            obs.event("lifecycle", detail="started")

    events = _run_and_load(tmp_path, body)
    by_name = {e["name"]: e for e in events}
    record = by_name["lifecycle"]
    assert record["type"] == "event"
    assert record["dur"] == 0.0
    assert record["parent"] == by_name["outer"]["id"]
    assert record["attrs"] == {"detail": "started"}
    assert obs.validate_events(events) == []


def test_span_ids_unique_and_pid_tagged(tmp_path):
    def body():
        for _ in range(5):
            with obs.span("loop"):
                pass

    events = _run_and_load(tmp_path, body)
    ids = [e["id"] for e in events]
    assert len(set(ids)) == 5
    assert all(sid.split(":")[0] == f"{os.getpid():x}" for sid in ids)


def test_current_span_id_tracks_the_stack(tmp_path):
    with obs.use_mode("trace", _trace(tmp_path)):
        assert obs.current_span_id() is None
        with obs.span("outer") as outer:
            assert obs.current_span_id() == outer.span_id
        assert obs.current_span_id() is None


def test_sink_reopens_after_flush_and_path_change(tmp_path):
    first, second = _trace(tmp_path, "a.jsonl"), _trace(tmp_path, "b.jsonl")
    with obs.use_mode("trace", first):
        with obs.span("one"):
            pass
        obs.flush()
    with obs.use_mode("trace", second):
        with obs.span("two"):
            pass
        obs.flush()
    assert [e["name"] for e in obs.load_events(first)] == ["one"]
    assert [e["name"] for e in obs.load_events(second)] == ["two"]
