"""Integration tests: telemetry through pipeline, runner, and streaming.

The load-bearing contracts:

* metric totals are identical whichever executor ran the shards
  (serial / thread / process) — shard workers capture into local
  registries that merge deterministically;
* span parent links survive the process boundary, so a campaign's
  trace renders as one tree;
* ``FitReport`` frequency-cache counters are per-fit even when
  concurrent fits share one ``SharedFitWorkspace`` under the thread
  executor (context-local scopes, not global snapshot deltas);
* ``FitReport.stage_seconds`` and the trace's stage spans are the same
  measurement (reconcile within 1ms).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import obs
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.pipeline import SharedFitWorkspace
from repro.runner import TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario

_TRIAL_OPS = obs.counter(
    "test_instr_trial_ops_total", "Deterministic per-trial bumps.", ["kind"]
)
_TRIAL_SIZES = obs.histogram(
    "test_instr_trial_size", "Trial index distribution.", buckets=[1.0, 2.0, 4.0, 8.0]
)


@pytest.fixture(scope="module")
def experiment(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 1)
    return run_experiment(scenario, 300, random_state=2, oracle=True)


def _spec(index):
    return TrialSpec(
        campaign="obs",
        topology="t",
        scenario=f"s{index}",
        estimator="e",
        seeds=(42,),
        index=index,
        group=(),
        cost=1.0,
        params={},
    )


def metric_trial(spec, cache):
    """Top-level (picklable) trial emitting deterministic metrics."""
    _TRIAL_OPS.inc(spec.index + 1, kind="even" if spec.index % 2 == 0 else "odd")
    _TRIAL_SIZES.observe(float(spec.index))
    return spec.index


def _own_series(snapshot):
    """Only this module's families (timing metrics are nondeterministic)."""
    return {
        "counters": [
            row for row in snapshot["counters"] if row[0].startswith("test_instr_")
        ],
        "histograms": [
            row for row in snapshot["histograms"] if row[0].startswith("test_instr_")
        ],
    }


# ----------------------------------------------------------------------
# Runner: deterministic merge and cross-process span parenting
# ----------------------------------------------------------------------
def test_metric_totals_identical_across_executors():
    specs = [_spec(i) for i in range(6)]
    merged = {}
    for label, kwargs in {
        "serial": {"workers": 1},
        "thread": {"workers": 2, "executor": "thread"},
        "process": {"workers": 2, "executor": "process"},
    }.items():
        with obs.use_mode("metrics"), obs.capture_metrics() as captured:
            results = run_trials(metric_trial, specs, **kwargs)
        assert [r.payload for r in results] == list(range(6))
        merged[label] = _own_series(captured.snapshot())
    assert merged["serial"] == merged["thread"] == merged["process"]
    counters = dict(
        ((name, tuple(lv)), value) for name, lv, value in merged["serial"]["counters"]
    )
    # 1+3+5 even-indexed bumps, 2+4+6 odd-indexed bumps.
    assert counters[("test_instr_trial_ops_total", ("even",))] == 9
    assert counters[("test_instr_trial_ops_total", ("odd",))] == 12
    ((_, _, payload),) = merged["serial"]["histograms"]
    assert sum(payload["counts"]) == 6


def test_runner_metrics_cover_trials_and_shards():
    specs = [_spec(i) for i in range(4)]
    reports = []
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        run_trials(
            metric_trial, specs, workers=2, executor="process", progress=reports.append
        )
    snapshot = captured.snapshot()
    counters = {name: value for name, _lv, value in snapshot["counters"]}
    assert counters["repro_runner_trials_total"] == 4
    hists = {name for name, _lv, _payload in snapshot["histograms"]}
    assert {"repro_runner_shard_seconds", "repro_runner_merge_seconds"} <= hists
    gauges = {name for name, _lv, _value in snapshot["gauges"]}
    assert "repro_runner_shard_utilization" in gauges
    assert all(report.queue_wait >= 0.0 for report in reports)


def test_span_parents_cross_the_process_boundary(tmp_path):
    path = tmp_path / "t.jsonl"
    specs = [_spec(i) for i in range(4)]
    with obs.use_mode("trace", path):
        with obs.span("driver") as driver:
            run_trials(metric_trial, specs, workers=2, executor="process")
        obs.flush()
    events = obs.load_events(path)
    assert obs.validate_events(events) == []
    shards = [e for e in events if e["name"] == "runner.shard"]
    trials = [e for e in events if e["name"] == "runner.trial"]
    assert shards and len(trials) == 4
    # Every shard span hangs off the driver span, from a different pid.
    assert {e["parent"] for e in shards} == {driver.span_id}
    assert any(e["pid"] != os.getpid() for e in shards)
    shard_ids = {e["id"] for e in shards}
    assert {e["parent"] for e in trials} <= shard_ids
    # The whole campaign renders as one tree under the driver root.
    roots = obs.build_tree(events)
    assert [root.name for root in roots] == ["driver"]


# ----------------------------------------------------------------------
# Pipeline: per-fit accounting and trace reconciliation
# ----------------------------------------------------------------------
def test_fit_metrics_agree_with_fit_report(small_brite, experiment):
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        model = CorrelationCompleteEstimator(EstimatorConfig(seed=3)).fit(
            small_brite, experiment.observations
        )
    snapshot = captured.snapshot()
    counters = {
        (name, tuple(lv)): value for name, lv, value in snapshot["counters"]
    }
    report = model.report
    assert counters[
        ("repro_pipeline_fits_total", ("Correlation-complete",))
    ] == 1
    assert counters[("repro_frequency_cache_hits_total", ())] == (
        report.frequency_cache_hits
    )
    assert counters[("repro_frequency_cache_misses_total", ())] == (
        report.frequency_cache_misses
    )
    assert any(name == "repro_kernel_calls_total" for name, _ in counters)
    stage_hist = [
        (tuple(lv), payload)
        for name, lv, payload in snapshot["histograms"]
        if name == "repro_pipeline_stage_seconds"
    ]
    observed_stages = {lv[0] for lv, _ in stage_hist}
    assert observed_stages == set(report.stage_seconds)


def test_fit_report_counters_survive_concurrent_shared_cache(
    small_brite, experiment
):
    """Satellite fix: thread-concurrent fits must not cross-count traffic."""
    workspace = SharedFitWorkspace(experiment.observations)
    config = EstimatorConfig(seed=3)
    CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations, workspace=workspace
    )
    warm = CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations, workspace=workspace
    )
    expected_hits = warm.report.frequency_cache_hits
    assert warm.report.frequency_cache_misses == 0

    reports = {}

    def fit_one(tag):
        model = CorrelationCompleteEstimator(config).fit(
            small_brite, experiment.observations, workspace=workspace
        )
        reports[tag] = model.report

    threads = [
        threading.Thread(target=fit_one, args=(tag,)) for tag in ("a", "b")
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Each concurrent fit sees exactly its own (fully warm) traffic; the
    # old global-snapshot deltas would attribute both fits' lookups to
    # whichever report closed last.
    for report in reports.values():
        assert report.frequency_cache_misses == 0
        assert report.frequency_cache_hits == expected_hits


def test_stage_seconds_reconcile_with_trace(small_brite, experiment, tmp_path):
    path = tmp_path / "t.jsonl"
    with obs.use_mode("trace", path):
        model = CorrelationCompleteEstimator(EstimatorConfig(seed=3)).fit(
            small_brite, experiment.observations
        )
        obs.flush()
    events = obs.load_events(path)
    (fit_event,) = [e for e in events if e["name"] == "pipeline.fit"]
    durations = obs.stage_durations(events)
    report = model.report
    for stage, seconds in report.stage_seconds.items():
        assert durations[(fit_event["id"], stage)] == pytest.approx(
            seconds, abs=1e-3
        )
    # Every traced stage under this fit is in the report, and vice versa.
    traced = {
        stage for (parent, stage) in durations if parent == fit_event["id"]
    }
    assert traced == set(report.stage_seconds)
