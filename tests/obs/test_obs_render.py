"""Unit tests for trace rendering/validation and metrics exposition."""

from __future__ import annotations

import json

import pytest

from repro import obs


def _span(name, sid, dur, parent=None, t0=0.0, status="ok", attrs=None):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "pid": 1,
        "t_start": t0,
        "t_end": t0 + dur,
        "dur": dur,
        "status": status,
        "attrs": attrs or {},
    }


# ----------------------------------------------------------------------
# Trace loading and validation
# ----------------------------------------------------------------------
def test_load_events_skips_blanks_and_names_bad_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(json.dumps(_span("a", "1:1", 0.5)) + "\n\n")
    assert len(obs.load_events(path)) == 1
    # The final record is where a killed worker truncates mid-append:
    # report-and-skip instead of failing the whole load.
    path.write_text(json.dumps(_span("a", "1:1", 0.5)) + "\n" + '{"type": "span"\n')
    events, warnings = obs.read_events(path)
    assert len(events) == 1
    assert ":2: skipped truncated trailing record" in warnings[0]
    # Corruption anywhere before the tail still names the line and raises.
    path.write_text('{"bad\n' + json.dumps(_span("a", "1:1", 0.5)) + "\n")
    with pytest.raises(ValueError, match=r":1: invalid JSON"):
        obs.load_events(path)


def test_validate_events_flags_schema_violations():
    good = _span("ok", "1:1", 0.5)
    assert obs.validate_events([good]) == []

    missing = {k: v for k, v in good.items() if k != "dur"}
    (error,) = obs.validate_events([missing])
    assert "missing keys" in error

    errors = obs.validate_events(
        [
            dict(good, type="mystery", id="1:2"),
            dict(good, dur=-1.0, id="1:3"),
            dict(good, status="meh", id="1:4"),
            dict(good, id="1:1"),  # duplicate of the first
            good,
        ]
    )
    assert any("unknown type" in e for e in errors)
    assert any("negative duration" in e for e in errors)
    assert any("status" in e for e in errors)
    assert any("duplicate span id" in e for e in errors)


def test_unknown_parent_is_legal():
    # The parent may live in another process's trace file.
    assert obs.validate_events([_span("w", "2:1", 0.1, parent="1:99")]) == []


# ----------------------------------------------------------------------
# Tree building and aggregation
# ----------------------------------------------------------------------
def _forest():
    return [
        _span("child_b", "1:3", 0.2, parent="1:1", t0=0.6),
        _span("child_a", "1:2", 0.3, parent="1:1", t0=0.1),
        _span("root", "1:1", 1.0, t0=0.0),
        _span("orphan", "2:9", 0.4, parent="9:9", t0=2.0),
    ]


def test_build_tree_orders_children_and_computes_self_time():
    roots = obs.build_tree(_forest())
    assert [r.name for r in roots] == ["root", "orphan"]
    root = roots[0]
    assert [c.name for c in root.children] == ["child_a", "child_b"]
    assert root.self_time == pytest.approx(0.5)
    assert root.total == pytest.approx(1.0)


def test_render_tree_shows_hierarchy_and_error_marker():
    events = _forest() + [
        _span("failed", "1:4", 0.1, parent="1:1", t0=0.9, status="error")
    ]
    text = obs.render_tree(events)
    assert "└─ failed!" in text
    assert text.index("root") < text.index("child_a") < text.index("child_b")
    assert obs.render_tree([]) == "(empty trace)\n"


def test_aggregate_spans_sums_by_name():
    totals = obs.aggregate_spans(_forest())
    assert totals["root"] == {"count": 1, "total_s": 1.0, "self_s": 0.5}
    assert totals["orphan"]["total_s"] == pytest.approx(0.4)


def test_stage_durations_keyed_by_fit_parent():
    events = [
        _span("pipeline.fit", "1:1", 1.0),
        _span("pipeline.solve", "1:2", 0.4, parent="1:1"),
        _span("pipeline.fit", "1:3", 2.0),
        _span("pipeline.solve", "1:4", 0.7, parent="1:3"),
        _span("runner.trial", "1:5", 3.0),
    ]
    durations = obs.stage_durations(events)
    assert durations[("1:1", "solve")] == pytest.approx(0.4)
    assert durations[("1:3", "solve")] == pytest.approx(0.7)
    assert ("1:5", "trial") not in durations


# ----------------------------------------------------------------------
# Prometheus / summary exposition
# ----------------------------------------------------------------------
_EXPO_COUNTER = obs.counter(
    "test_expo_requests_total", "Requests seen.", ["route"]
)
_EXPO_HIST = obs.histogram(
    "test_expo_latency_seconds", "Latency.", buckets=[0.1, 1.0]
)


def _sample_snapshot():
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _EXPO_COUNTER.inc(3, route='a"b\\c')
        for value in (0.05, 0.5, 0.5, 5.0):
            _EXPO_HIST.observe(value)
    return captured.snapshot()


def test_prometheus_exposition_format():
    text = obs.render_prometheus(_sample_snapshot())
    assert "# HELP test_expo_requests_total Requests seen." in text
    assert "# TYPE test_expo_requests_total counter" in text
    # Label values are escaped.
    assert 'test_expo_requests_total{route="a\\"b\\\\c"} 3' in text
    # Histogram buckets are cumulative, with +Inf covering everything.
    assert 'test_expo_latency_seconds_bucket{le="0.1"} 1' in text
    assert 'test_expo_latency_seconds_bucket{le="1"} 3' in text
    assert 'test_expo_latency_seconds_bucket{le="+Inf"} 4' in text
    assert "test_expo_latency_seconds_count 4" in text
    assert "test_expo_latency_seconds_sum 6.05" in text


def test_prometheus_escapes_hostile_label_values():
    # Quotes, backslashes, and newlines must all be escaped per the text
    # exposition format — an unescaped newline splits the sample line and
    # breaks any scraper parsing the page.
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _EXPO_COUNTER.inc(route='multi\nline "quoted" back\\slash')
    text = obs.render_prometheus(captured.snapshot())
    assert (
        'route="multi\\nline \\"quoted\\" back\\\\slash"' in text
    )
    sample_lines = [
        line for line in text.splitlines() if "test_expo_requests_total{" in line
    ]
    assert len(sample_lines) == 1  # the newline never split the sample


def test_prometheus_single_bucket_histogram_renders_cumulative():
    hist = obs.histogram(
        "test_expo_single_bucket_seconds", "One bucket.", buckets=[1.0]
    )
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        hist.observe(0.5)
        hist.observe(2.0)  # overflow
    text = obs.render_prometheus(captured.snapshot())
    assert 'test_expo_single_bucket_seconds_bucket{le="1"} 1' in text
    assert 'test_expo_single_bucket_seconds_bucket{le="+Inf"} 2' in text
    assert "test_expo_single_bucket_seconds_count 2" in text


def test_prometheus_lists_every_declared_family_even_at_zero():
    empty = obs.MetricsRegistry().snapshot()
    text = obs.render_prometheus(empty)
    # Families declared by instrumented modules appear with no samples.
    assert "# TYPE test_expo_requests_total counter" in text
    assert "# TYPE repro_pipeline_fits_total counter" in text


def test_summary_renders_quantiles_and_empty_hint():
    summary = obs.render_summary(_sample_snapshot())
    assert "test_expo_requests_total" in summary
    assert "count=4" in summary
    assert "p50=" in summary and "p99=" in summary
    assert "REPRO_OBS" in obs.render_summary(obs.MetricsRegistry().snapshot())


def test_render_json_round_trips():
    snapshot = _sample_snapshot()
    assert json.loads(obs.render_json(snapshot)) == snapshot
