"""Streaming-engine telemetry: ingest/refit metrics and alert events."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import oracle_path_status
from repro.streaming import AlertManager, AlertPolicy, StreamingEstimator
from repro.topology.builders import fig1_topology


@pytest.fixture(scope="module")
def network():
    return fig1_topology(case=1)


@pytest.fixture(scope="module")
def horizon(network):
    quiet = CongestionModel(4, [Driver(0.1, frozenset({0}))])
    busy = CongestionModel(4, [Driver(0.7, frozenset({0}))])
    truth = NonStationaryModel([(quiet, 100), (busy, 100)])
    states = truth.sample(200, np.random.default_rng(4))
    return oracle_path_status(network, states).matrix


def _engine(network, **kwargs):
    return StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=50,
        **kwargs,
    )


def _counters(snapshot):
    return {(name, tuple(lv)): value for name, lv, value in snapshot["counters"]}


def test_engine_metrics_track_ingest_and_refits(network, horizon):
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        engine = _engine(network)
        for start in range(0, 200, 10):
            engine.ingest(horizon[start : start + 10])
    snapshot = captured.snapshot()
    counters = _counters(snapshot)
    assert counters[("repro_streaming_intervals_total", ())] == 200
    assert counters[("repro_streaming_refits_total", ())] == engine.refits
    assert engine.refits == 4
    gauges = {(name, tuple(lv)): value for name, lv, value in snapshot["gauges"]}
    assert gauges[("repro_streaming_ring_occupancy", ())] >= 1
    refit_hist = [
        payload
        for name, _lv, payload in snapshot["histograms"]
        if name == "repro_streaming_refit_seconds"
    ]
    assert sum(refit_hist[0]["counts"]) == engine.refits + engine.skipped_windows


def test_alert_transitions_counted_and_traced(network, horizon, tmp_path):
    path = tmp_path / "t.jsonl"
    with obs.use_mode("trace", path), obs.capture_metrics() as captured:
        engine = _engine(
            network,
            alert_manager=AlertManager(
                network, AlertPolicy(peer_high=None, peer_low=None, link_shift=0.25)
            ),
        )
        engine.ingest(horizon)
        obs.flush()
    assert engine.alerts, "the quiet->busy shift must raise level_shift alerts"
    counters = _counters(captured.snapshot())
    shift_total = sum(
        value
        for (name, lv), value in counters.items()
        if name == "repro_streaming_alerts_total"
    )
    assert shift_total == len(engine.alerts)
    events = obs.load_events(path)
    assert obs.validate_events(events) == []
    alert_events = [e for e in events if e["name"] == "streaming.alert"]
    assert len(alert_events) == len(engine.alerts)
    assert {e["attrs"]["kind"] for e in alert_events} == {"level_shift"}
    # Refit spans bracket the alert (alerts fire during a refit's emit).
    assert any(e["name"] == "streaming.refit" for e in events)
