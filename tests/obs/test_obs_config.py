"""Unit tests for the telemetry mode switch (repro.obs.config)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.obs import config


def test_default_mode_is_off(monkeypatch):
    monkeypatch.delenv(config.MODE_ENV, raising=False)
    obs.reset()
    assert obs.mode() == obs.OFF
    assert not obs.metrics_enabled()
    assert not obs.trace_enabled()


@pytest.mark.parametrize("raw", ["metrics", "METRICS", " trace "])
def test_env_mode_parsing(monkeypatch, raw):
    monkeypatch.setenv(config.MODE_ENV, raw)
    obs.reset()
    assert obs.mode() == raw.strip().lower()
    assert obs.metrics_enabled()


def test_unknown_env_mode_warns_and_stays_off(monkeypatch):
    monkeypatch.setenv(config.MODE_ENV, "verbose")
    with pytest.warns(RuntimeWarning, match="unknown REPRO_OBS"):
        obs.reset()
    assert obs.mode() == obs.OFF


def test_configure_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown telemetry mode"):
        obs.configure("loud")


def test_use_mode_restores_previous_state(tmp_path):
    before = obs.mode()
    with obs.use_mode("trace", tmp_path / "t.jsonl"):
        assert obs.trace_enabled()
        assert obs.trace_path() == tmp_path / "t.jsonl"
    assert obs.mode() == before


def test_trace_path_defaults_to_working_directory(monkeypatch):
    monkeypatch.delenv(config.TRACE_PATH_ENV, raising=False)
    obs.reset()
    assert obs.trace_path() == Path(config.DEFAULT_TRACE_FILENAME)


def test_set_default_trace_path_yields_to_env_pin(monkeypatch, tmp_path):
    monkeypatch.setenv(config.TRACE_PATH_ENV, str(tmp_path / "pinned.jsonl"))
    obs.reset()
    assert not obs.set_default_trace_path(tmp_path / "campaign" / "t.jsonl")
    assert obs.trace_path() == tmp_path / "pinned.jsonl"

    monkeypatch.delenv(config.TRACE_PATH_ENV)
    obs.reset()
    assert obs.set_default_trace_path(tmp_path / "campaign" / "t.jsonl")
    assert obs.trace_path() == tmp_path / "campaign" / "t.jsonl"


def test_runtime_config_round_trip(tmp_path):
    with obs.use_mode("trace", tmp_path / "t.jsonl"):
        shipped = obs.runtime_config()
    # A worker (fresh interpreter state) adopts the parent's settings.
    obs.reset()
    obs.apply_runtime_config(shipped)
    assert obs.mode() == "trace"
    assert obs.trace_path() == tmp_path / "t.jsonl"
    assert config.trace_path_explicit()
