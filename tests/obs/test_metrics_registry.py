"""Unit tests for the metrics registry, handles, and local counter scopes."""

from __future__ import annotations

import math
import threading

import pytest

from repro import obs
from repro.obs.registry import _declare

_COUNTER = obs.counter("test_obs_requests_total", "Test counter.", ["kind"])
_GAUGE = obs.gauge("test_obs_depth", "Test gauge.")
_HIST = obs.histogram("test_obs_latency_seconds", "Test histogram.", buckets=[0.1, 1.0])


def _counter_value(snapshot, name, labels=()):
    for family, lv, value in snapshot["counters"]:
        if family == name and tuple(lv) == tuple(labels):
            return value
    return None


def test_updates_are_dropped_when_off():
    with obs.use_mode("off"), obs.capture_metrics() as captured:
        _COUNTER.inc(kind="a")
        _GAUGE.set(3.0)
        _HIST.observe(0.5)
    snapshot = captured.snapshot()
    assert snapshot["counters"] == []
    assert snapshot["gauges"] == []
    assert snapshot["histograms"] == []


def test_counter_labels_partition_series():
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _COUNTER.inc(kind="a")
        _COUNTER.inc(2, kind="b")
        _COUNTER.inc(kind="a")
    snapshot = captured.snapshot()
    assert _counter_value(snapshot, "test_obs_requests_total", ("a",)) == 2
    assert _counter_value(snapshot, "test_obs_requests_total", ("b",)) == 2


def test_histogram_buckets_and_overflow():
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        for value in (0.05, 0.5, 5.0):
            _HIST.observe(value)
    ((name, _lv, payload),) = captured.snapshot()["histograms"]
    assert name == "test_obs_latency_seconds"
    # One observation per bucket, the 5.0 in the +Inf overflow slot.
    assert payload["counts"] == [1, 1, 1]
    assert payload["sum"] == pytest.approx(5.55)


def test_capture_is_invisible_to_global_registry():
    obs.global_registry().clear()
    with obs.use_mode("metrics"):
        with obs.capture_metrics():
            _COUNTER.inc(kind="captured")
        _COUNTER.inc(kind="global")
    snapshot = obs.global_registry().snapshot()
    assert _counter_value(snapshot, "test_obs_requests_total", ("captured",)) is None
    assert _counter_value(snapshot, "test_obs_requests_total", ("global",)) == 1


def test_merge_totals_independent_of_order():
    with obs.use_mode("metrics"):
        snapshots = []
        for rounds in (1, 2, 3):
            with obs.capture_metrics() as captured:
                for _ in range(rounds):
                    _COUNTER.inc(kind="m")
                    _HIST.observe(0.5)
            snapshots.append(captured.snapshot())
    merged = []
    for ordering in (snapshots, snapshots[::-1]):
        target = obs.MetricsRegistry()
        for snapshot in ordering:
            target.merge(snapshot)
        merged.append(target.snapshot())
    assert merged[0] == merged[1]
    assert _counter_value(merged[0], "test_obs_requests_total", ("m",)) == 6


def test_merge_rejects_changed_bucket_layout():
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _HIST.observe(0.5)
    snapshot = captured.snapshot()
    snapshot["histograms"][0][2]["counts"].append(7)
    target = obs.MetricsRegistry()
    target.merge(captured.snapshot())
    with pytest.raises(ValueError, match="bucket layout"):
        target.merge(snapshot)


def test_conflicting_redeclaration_raises():
    obs.counter("test_obs_requests_total", "Same shape is fine.", ["kind"])
    with pytest.raises(ValueError, match="already declared"):
        obs.gauge("test_obs_requests_total", "Different kind.")
    with pytest.raises(ValueError, match="already declared"):
        obs.counter("test_obs_requests_total", "Different labels.", ["other"])


def test_invalid_names_rejected():
    with pytest.raises(ValueError, match="invalid metric name"):
        _declare("9bad", "counter", "x", ())
    with pytest.raises(ValueError, match="invalid label name"):
        _declare("test_obs_ok_total", "counter", "x", ("bad-label",))
    with pytest.raises(ValueError, match="strictly increase"):
        _declare("test_obs_bad_hist", "histogram", "x", (), buckets=[1.0, 1.0])


def test_quantile_interpolation():
    buckets = (0.1, 1.0)
    # 10 observations in (0.1, 1.0]: the median interpolates mid-bucket.
    assert obs.quantile_from_counts(buckets, [0, 10, 0], 0.5) == pytest.approx(0.55)
    # Overflow observations report the highest finite bound.
    assert obs.quantile_from_counts(buckets, [0, 0, 4], 0.99) == 1.0
    assert math.isnan(obs.quantile_from_counts(buckets, [0, 0, 0], 0.5))


def test_quantile_empty_and_single_bucket_edge_cases():
    # No observations at all: NaN, never a crash or a fake zero.
    assert math.isnan(obs.quantile_from_counts((), [], 0.5))
    assert math.isnan(obs.quantile_from_counts((1.0,), [0, 0], 0.9))
    # No finite buckets declared: nothing to interpolate against.
    assert math.isnan(obs.quantile_from_counts((), [5], 0.5))
    # Single finite bucket: the median interpolates inside (0, bound].
    assert obs.quantile_from_counts((1.0,), [4, 0], 0.5) == pytest.approx(0.5)
    # Single bucket, everything in overflow: the finite bound is the cap.
    assert obs.quantile_from_counts((1.0,), [0, 3], 0.5) == 1.0
    # Quantiles outside [0, 1] are caller bugs, not data.
    with pytest.raises(ValueError, match="quantile"):
        obs.quantile_from_counts((1.0,), [1, 0], 1.5)


def test_local_counters_nest_and_isolate():
    with obs.local_counters() as outer:
        obs.bump_local("queries", 2)
        with obs.local_counters() as inner:
            obs.bump_local("queries")
        obs.bump_local("misses")
    assert outer.values == {"queries": 3, "misses": 1}
    assert inner.values == {"queries": 1}


def test_local_counters_are_per_thread():
    """Two threads share nothing even when bumping the same name."""
    results = {}

    def work(name, bumps):
        with obs.local_counters() as scope:
            for _ in range(bumps):
                obs.bump_local("queries")
            results[name] = scope.get("queries")

    threads = [
        threading.Thread(target=work, args=("a", 3)),
        threading.Thread(target=work, args=("b", 7)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results == {"a": 3, "b": 7}


def test_bump_local_without_scope_is_a_no_op():
    obs.bump_local("unobserved")  # must not raise or leak anywhere
    with obs.local_counters() as scope:
        pass
    assert scope.get("unobserved") == 0
