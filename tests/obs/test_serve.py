"""Unit tests for the live telemetry exporter (:mod:`repro.obs.serve`)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.serve import (
    ResourceSampler,
    TelemetryServer,
    cpu_seconds,
    ensure_metrics_mode,
    read_rss_bytes,
    recent_spans,
)

_SERVE_COUNTER = obs.counter(
    "test_serve_ticks_total", "Serve test counter.", ["kind"]
)


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


def test_metrics_endpoint_serves_prometheus_text():
    with obs.use_mode("metrics"):
        _SERVE_COUNTER.inc(3, kind="scrapeme")
        with TelemetryServer(sample_interval=None) as server:
            status, headers, body = _get(f"{server.url}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert "# TYPE test_serve_ticks_total counter" in body
    assert 'test_serve_ticks_total{kind="scrapeme"} 3' in body


def test_metrics_json_and_healthz_round_trip():
    with obs.use_mode("metrics"):
        _SERVE_COUNTER.inc(kind="json")
        with TelemetryServer(sample_interval=None) as server:
            _, _, metrics = _get(f"{server.url}/metrics.json")
            _, _, health = _get(f"{server.url}/healthz")
    snapshot = json.loads(metrics)
    assert ["test_serve_ticks_total", ["json"], 1] in snapshot["counters"]
    payload = json.loads(health)
    assert payload["status"] == "ok"
    assert payload["mode"] == "metrics"
    assert payload["uptime_s"] >= 0


def test_healthz_merges_status_fn_and_survives_failures():
    calls = {"n": 0}

    def status_fn():
        calls["n"] += 1
        if calls["n"] > 1:
            raise RuntimeError("engine went away")
        return {"refits": 7}

    with obs.use_mode("metrics"):
        with TelemetryServer(
            sample_interval=None, status_fn=status_fn
        ) as server:
            _, _, first = _get(f"{server.url}/healthz")
            second_status, _, second = _get(f"{server.url}/healthz")
    assert json.loads(first)["refits"] == 7
    assert second_status == 200  # sick hook must not 500 the probe
    assert "engine went away" in json.loads(second)["status_error"]


def test_unknown_route_404_lists_routes():
    with obs.use_mode("metrics"):
        with TelemetryServer(sample_interval=None) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            body = json.loads(excinfo.value.read().decode("utf-8"))
    assert excinfo.value.code == 404
    assert "/metrics" in body["routes"]


def test_spans_recent_serves_trace_tail(tmp_path):
    trace = tmp_path / "telemetry.jsonl"
    with obs.use_mode("trace", trace):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.flush()
        with TelemetryServer(sample_interval=None) as server:
            _, _, body = _get(f"{server.url}/spans/recent?limit=1")
    payload = json.loads(body)
    assert payload["tracing"] is True
    assert len(payload["events"]) == 1
    assert payload["warnings"] == []


def test_recent_spans_absent_file_is_not_an_error(tmp_path):
    with obs.use_mode("trace", tmp_path / "never_written.jsonl"):
        payload = recent_spans()
    assert payload["events"] == []
    assert payload["warnings"] == []


def test_recent_spans_reports_truncated_tail(tmp_path):
    trace = tmp_path / "telemetry.jsonl"
    with obs.use_mode("trace", trace):
        with obs.span("kept"):
            pass
        obs.flush()
        with open(trace, "a") as handle:
            handle.write('{"type": "span", "name": "cut')
        payload = recent_spans()
    assert [e["name"] for e in payload["events"]] == ["kept"]
    assert any("truncated" in w for w in payload["warnings"])


def test_resource_sampler_populates_gauges():
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        sampler = ResourceSampler(interval=60.0)
        sampler.sample()
    names = {name for name, _lv, _v in captured.snapshot()["gauges"]}
    assert "repro_process_resident_memory_bytes" in names
    assert "repro_process_cpu_seconds_total" in names
    assert "repro_process_gc_collections_total" in names
    assert sampler.samples == 1


def test_resource_sampler_thread_lifecycle():
    with obs.use_mode("metrics"):
        sampler = ResourceSampler(interval=0.01).start()
        assert sampler.samples >= 1  # immediate first sample
        sampler.stop()
        assert sampler._thread is None
    with pytest.raises(ValueError, match="interval"):
        ResourceSampler(interval=0.0)


def test_resource_probes_return_positive_numbers():
    assert read_rss_bytes() > 0
    assert cpu_seconds() > 0


def test_sampler_rides_along_with_server():
    with obs.use_mode("metrics"):
        with TelemetryServer(sample_interval=30.0) as server:
            _, _, body = _get(f"{server.url}/metrics")
            _, _, health = _get(f"{server.url}/healthz")
    assert "repro_process_resident_memory_bytes" in body
    assert json.loads(health)["samples"] >= 1


def test_scrape_counter_tracks_endpoints():
    with obs.use_mode("metrics"):
        with TelemetryServer(sample_interval=None) as server:
            _get(f"{server.url}/metrics")
            _get(f"{server.url}/metrics")
            _, _, body = _get(f"{server.url}/metrics.json")
    snapshot = json.loads(body)
    scrapes = {
        tuple(labels): value
        for name, labels, value in snapshot["counters"]
        if name == "repro_obs_scrapes_total"
    }
    assert scrapes[("metrics",)] == 2


def test_port_zero_picks_a_free_port_and_stop_is_idempotent():
    server = TelemetryServer()
    assert server.port == 0
    server.start()
    try:
        assert 0 < server.port < 65536
        assert server.start() is server  # second start is a no-op
    finally:
        server.stop()
        server.stop()


def test_ensure_metrics_mode_promotes_off_only():
    with obs.use_mode("off"):
        assert ensure_metrics_mode() is True
        assert obs.metrics_enabled()
        assert ensure_metrics_mode() is False
    with obs.use_mode("trace"):
        assert ensure_metrics_mode() is False  # trace already collects
