"""Unit tests for :mod:`repro.obs.analyze` and tolerant trace loading."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    aggregate_spans,
    critical_paths,
    diff_aggregates,
    diff_traces,
    load_trace,
    read_events,
    render_critical_paths,
    render_diff,
    render_regressions,
    render_shard_report,
    shard_report,
    top_regressions,
)


def _span(name, sid, dur, parent=None, t0=0.0, **attrs):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "pid": 1,
        "t_start": t0,
        "t_end": t0 + dur,
        "dur": dur,
        "status": "ok",
        "attrs": attrs,
    }


def _write_trace(tmp_path, events, name="t.jsonl"):
    path = tmp_path / name
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


# ---------------------------------------------------------------------------
# Tolerant loading (satellite: killed worker truncates the last record)
# ---------------------------------------------------------------------------
def test_read_events_skips_truncated_trailing_record(tmp_path):
    path = tmp_path / "t.jsonl"
    good = json.dumps(_span("a", "1:1", 1.0))
    path.write_text(good + "\n" + '{"type": "span", "name": "cut')
    events, warnings = read_events(path)
    assert [e["name"] for e in events] == ["a"]
    assert len(warnings) == 1
    assert "truncated trailing record" in warnings[0]


def test_read_events_rejects_interior_corruption(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        "NOT JSON\n" + json.dumps(_span("a", "1:1", 1.0)) + "\n"
    )
    with pytest.raises(ValueError, match="invalid JSON"):
        read_events(path)


def test_load_trace_returns_events_and_warnings(tmp_path):
    path = _write_trace(tmp_path, [_span("a", "1:1", 1.0)])
    events, warnings = load_trace(path)
    assert [e["name"] for e in events] == ["a"]
    assert warnings == []


# ---------------------------------------------------------------------------
# Critical paths
# ---------------------------------------------------------------------------
def test_critical_paths_follows_dominant_chain(tmp_path):
    events = [
        _span("root", "1:1", 1.0),
        _span("big", "1:2", 0.6, parent="1:1", t0=0.1),
        _span("small", "1:3", 0.2, parent="1:1", t0=0.7),
        _span("leaf", "1:4", 0.5, parent="1:2", t0=0.15),
    ]
    (report,) = critical_paths(events)
    assert report.root == "root"
    assert report.total_s == pytest.approx(1.0)
    assert report.self_s == pytest.approx(0.2)  # 1.0 - 0.6 - 0.2
    assert report.child_s == pytest.approx(0.8)
    assert [step.name for step in report.steps] == ["root", "big", "leaf"]
    assert report.steps[1].fraction == pytest.approx(0.6)
    # Contributors: leaf 0.5 self, root 0.2, small 0.2, big 0.1.
    assert report.contributors[0][0] == "leaf"
    names = {name for name, _s, _c in report.contributors}
    assert names == {"leaf", "root", "small", "big"}


def test_critical_paths_skips_point_events_and_orders_roots():
    events = [
        _span("short", "1:1", 0.2),
        _span("long", "1:2", 2.0, t0=1.0),
        {"type": "event", "name": "marker", "id": "1:9", "pid": 1,
         "t_start": 0.0, "t_end": 0.0, "dur": 0.0, "status": "ok",
         "attrs": {}},
    ]
    reports = critical_paths(events)
    assert [r.root for r in reports] == ["long", "short"]


def test_render_critical_paths_mentions_chain_and_contributors():
    events = [
        _span("root", "1:1", 1.0),
        _span("child", "1:2", 0.6, parent="1:1", t0=0.1),
    ]
    text = render_critical_paths(critical_paths(events))
    assert "critical path:" in text
    assert "child: 600.00ms (60% of root" in text
    assert "top self-time contributors:" in text
    assert render_critical_paths([]) == "(no root spans in trace)\n"


# ---------------------------------------------------------------------------
# Shard utilization
# ---------------------------------------------------------------------------
def _shard_trace():
    return [
        _span("campaign", "1:1", 3.0, t0=0.0),
        _span("runner.shard", "1:2", 2.0, parent="1:1", t0=0.5, shard=0, trials=2),
        _span("runner.trial", "1:3", 0.8, parent="1:2", t0=0.5, index=0),
        _span("runner.trial", "1:4", 1.0, parent="1:2", t0=1.3, index=1),
        _span("runner.shard", "1:5", 2.4, parent="1:1", t0=0.6, shard=1, trials=1),
        _span("runner.trial", "1:6", 2.3, parent="1:5", t0=0.6, index=2),
    ]


def test_shard_report_utilization_and_straggler():
    report = shard_report(_shard_trace())
    assert [s.shard for s in report.shards] == [0, 1]
    first, second = report.shards
    assert first.trials == 2
    assert first.busy_s == pytest.approx(1.8)
    assert first.utilization == pytest.approx(0.9)
    assert first.start_delay_s == pytest.approx(0.5)
    assert first.slowest_trial_index == 1
    assert report.straggler == 1  # ends at 3.0 vs 2.5
    assert report.spread_s == pytest.approx(0.5)


def test_shard_report_empty_without_runner_spans():
    report = shard_report([_span("pipeline.fit", "1:1", 1.0)])
    assert report.shards == []
    assert report.straggler is None
    assert "no runner.shard spans" in render_shard_report(report)


def test_render_shard_report_marks_straggler():
    text = render_shard_report(shard_report(_shard_trace()))
    assert "<-- straggler" in text
    assert "shard end spread:" in text


# ---------------------------------------------------------------------------
# Cross-run diffing
# ---------------------------------------------------------------------------
def test_diff_aggregates_covers_both_sides():
    base = {"a": {"count": 1, "total_s": 1.0, "self_s": 1.0}}
    cur = {"b": {"count": 2, "total_s": 0.5, "self_s": 0.5}}
    deltas = diff_aggregates(base, cur)
    by_name = {d.name: d for d in deltas}
    assert by_name["a"].cur_count == 0
    assert by_name["a"].delta_self_s == pytest.approx(-1.0)
    assert by_name["b"].base_count == 0
    assert by_name["b"].ratio is None  # base self time is zero
    # Ordered by absolute delta: the 1.0s drop before the 0.5s add.
    assert [d.name for d in deltas] == ["a", "b"]


def test_top_regressions_known_only_drops_new_spans():
    base = {"a": {"count": 1, "total_s": 1.0, "self_s": 1.0}}
    cur = {
        "a": {"count": 1, "total_s": 2.0, "self_s": 1.4},
        "new": {"count": 1, "total_s": 9.0, "self_s": 9.0},
    }
    deltas = diff_aggregates(base, cur)
    assert [d.name for d in top_regressions(deltas)] == ["a"]
    ranked = top_regressions(deltas, known_only=False)
    assert [d.name for d in ranked] == ["new", "a"]


def test_diff_traces_and_render(tmp_path):
    base = _write_trace(
        tmp_path, [_span("fit", "1:1", 1.0)], name="base.jsonl"
    )
    cur = _write_trace(
        tmp_path,
        [_span("fit", "2:1", 1.5), _span("fit", "2:2", 1.5, t0=2.0)],
        name="cur.jsonl",
    )
    deltas, warnings = diff_traces(base, cur)
    assert warnings == []
    (delta,) = deltas
    assert delta.name == "fit"
    assert delta.base_count == 1 and delta.cur_count == 2
    assert delta.delta_self_s == pytest.approx(2.0)
    text = render_diff(deltas)
    assert "top regressions (self-time growth):" in text
    assert "fit: 1.000s -> 3.000s (+2.000s)" in text
    assert "1 -> 2" in text.replace("   ", " ").replace("  ", " ")


def test_render_diff_handles_no_growth():
    base = {"a": {"count": 1, "total_s": 1.0, "self_s": 1.0}}
    cur = {"a": {"count": 1, "total_s": 0.5, "self_s": 0.5}}
    text = render_diff(diff_aggregates(base, cur))
    assert "no span self-time grew" in text
    assert render_diff([]) == "(no spans on either side)\n"


def test_render_regressions_compact_format():
    deltas = diff_aggregates(
        {"a": {"count": 1, "total_s": 1.0, "self_s": 1.0}},
        {"a": {"count": 1, "total_s": 2.0, "self_s": 2.5}},
    )
    text = render_regressions(top_regressions(deltas))
    assert text.startswith("top regressed spans")
    assert "a: 1.000s -> 2.500s (+1.500s)" in text


def test_aggregate_then_diff_round_trip(tmp_path):
    # The aggregation the benchmark gate commits and the diff consume
    # the same shapes end to end.
    events = [
        _span("root", "1:1", 1.0),
        _span("child", "1:2", 0.4, parent="1:1", t0=0.1),
    ]
    agg = aggregate_spans(events)
    deltas = diff_aggregates(agg, agg)
    assert all(d.delta_self_s == 0.0 for d in deltas)
