"""Isolation for the obs suite: every test leaves telemetry pristine.

The mode switch, the global registry, and the span sink are process
state; tests that flip them must not leak into each other (or into the
rest of the tier-1 suite running in the same worker).
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _isolate_obs():
    yield
    obs.flush()
    obs.reset()
    obs.global_registry().clear()
