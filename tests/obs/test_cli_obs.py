"""CLI wiring tests for ``repro-tomography obs`` and telemetry-aware runs."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main

_CLI_COUNTER = obs.counter("test_cliobs_ticks_total", "CLI test counter.")


def _write_trace(tmp_path, events):
    path = tmp_path / "t.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


def _span(name, sid, dur, parent=None, t0=0.0):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "pid": 1,
        "t_start": t0,
        "t_end": t0 + dur,
        "dur": dur,
        "status": "ok",
        "attrs": {},
    }


def test_obs_summary_reports_mode_and_families(capsys):
    assert main(["obs", "summary"]) == 0
    out = capsys.readouterr().out
    assert "telemetry mode:" in out
    assert "declared metric families:" in out


def test_obs_export_prom_covers_instrumented_layers(capsys):
    assert main(["obs", "export", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    for family in (
        "repro_pipeline_fits_total",
        "repro_kernel_calls_total",
        "repro_frequency_cache_hits_total",
        "repro_runner_trials_total",
        "repro_streaming_refits_total",
    ):
        assert f"# TYPE {family}" in out


def test_obs_export_json_round_trips_live_registry(capsys):
    with obs.use_mode("metrics"):
        _CLI_COUNTER.inc(5)
        assert main(["obs", "export", "--format", "json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert ["test_cliobs_ticks_total", [], 5] in snapshot["counters"]


def test_obs_export_reads_snapshot_file(tmp_path, capsys):
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _CLI_COUNTER.inc(7)
    path = tmp_path / "metrics.json"
    path.write_text(obs.render_json(captured.snapshot()))
    assert main(["obs", "export", "--snapshot", str(path)]) == 0
    assert "test_cliobs_ticks_total 7" in capsys.readouterr().out


def test_obs_spans_validates_and_renders(tmp_path, capsys):
    trace = _write_trace(
        tmp_path,
        [
            _span("child", "1:2", 0.4, parent="1:1", t0=0.1),
            _span("root", "1:1", 1.0),
        ],
    )
    assert main(["obs", "spans", str(trace), "--validate"]) == 0
    assert "schema valid" in capsys.readouterr().out
    assert main(["obs", "spans", str(trace), "--tree"]) == 0
    out = capsys.readouterr().out
    assert "└─ child" in out


def test_obs_spans_flags_invalid_traces(tmp_path, capsys):
    bad = dict(_span("x", "1:1", 1.0), status="meh")
    trace = _write_trace(tmp_path, [bad])
    assert main(["obs", "spans", str(trace), "--validate"]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_obs_spans_requires_a_trace_argument():
    with pytest.raises(SystemExit, match="provide a span-trace"):
        main(["obs", "spans"])


def test_obs_spans_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["obs", "spans", str(tmp_path / "absent.jsonl")])


def test_traced_campaign_drops_telemetry_next_to_results(tmp_path, capsys):
    with obs.use_mode("trace"):
        assert (
            main(
                [
                    "campaign",
                    "scaling",
                    "--scale",
                    "small",
                    "--replicates",
                    "1",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        obs.flush()
    out = capsys.readouterr().out
    assert "metrics snapshot:" in out
    assert "span trace:" in out
    trace = tmp_path / "telemetry.jsonl"
    assert trace.exists()
    events = obs.load_events(trace)
    assert obs.validate_events(events) == []
    assert any(e["name"] == "campaign" for e in events)
    (metrics_path,) = tmp_path.glob("*_metrics.json")
    snapshot = json.loads(metrics_path.read_text())
    names = {name for name, _lv, _value in snapshot["counters"]}
    assert "repro_pipeline_fits_total" in names


def _shard(sid, shard, dur, t0, parent="1:1"):
    event = _span("runner.shard", sid, dur, parent=parent, t0=t0)
    event["attrs"] = {"shard": shard, "trials": 1}
    return event


def _runner_trace(tmp_path):
    trial = _span("runner.trial", "1:4", 1.8, parent="1:3", t0=0.6)
    trial["attrs"] = {"index": 0}
    return _write_trace(
        tmp_path,
        [
            _span("campaign", "1:1", 3.0),
            _shard("1:2", 0, 1.0, 0.5),
            _shard("1:3", 1, 2.0, 0.6),
            trial,
        ],
    )


def test_obs_critical_path_renders_chain_and_shard_report(tmp_path, capsys):
    trace = _runner_trace(tmp_path)
    assert main(["obs", "critical-path", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "campaign:" in out
    assert "top self-time contributors:" in out
    assert "runner shard utilization:" in out
    assert "<-- straggler" in out


def test_obs_critical_path_requires_a_trace():
    with pytest.raises(SystemExit, match="critical-path: provide"):
        main(["obs", "critical-path"])


def test_obs_diff_names_per_span_deltas(tmp_path, capsys):
    base = _write_trace(tmp_path, [_span("fit", "1:1", 1.0)])
    current = tmp_path / "current.jsonl"
    current.write_text(json.dumps(_span("fit", "2:1", 2.5)) + "\n")
    assert main(["obs", "diff", str(base), str(current)]) == 0
    out = capsys.readouterr().out
    assert f"span self-time diff: {base} -> {current}" in out
    assert "top regressions (self-time growth):" in out
    assert "fit: 1.000s -> 2.500s (+1.500s)" in out


def test_obs_diff_requires_exactly_two_traces(tmp_path):
    trace = _write_trace(tmp_path, [_span("fit", "1:1", 1.0)])
    with pytest.raises(SystemExit, match="diff: provide two"):
        main(["obs", "diff", str(trace)])


def test_obs_spans_tolerates_truncated_tail(tmp_path, capsys):
    trace = _write_trace(tmp_path, [_span("kept", "1:1", 1.0)])
    with open(trace, "a") as handle:
        handle.write('{"type": "span", "name": "cut')
    assert main(["obs", "spans", str(trace), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out and "truncated trailing record" in out
    assert "1 event(s), schema valid" in out


@pytest.mark.parametrize(
    "argv",
    [
        ["campaign", "scaling", "--scale", "small", "--obs", "metrics"],
        ["mitigate", "--scale", "tiny", "--obs", "metrics"],
        [
            "monitor",
            "--scale",
            "small",
            "--intervals",
            "32",
            "--window",
            "32",
            "--obs",
            "metrics",
        ],
    ],
)
def test_obs_flag_overrides_env_mode(argv, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # metrics snapshots land in cwd
    assert obs.mode() == "off"
    assert main(argv) == 0
    assert obs.mode() == "metrics"  # conftest resets after the test


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_monitor_serve_port_serves_for_the_run(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # serving promotes metrics; snapshot in cwd
    port = _free_port()
    assert (
        main(
            [
                "monitor",
                "--scale",
                "small",
                "--intervals",
                "32",
                "--window",
                "32",
                "--serve-port",
                str(port),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "promoted to metrics mode for serving" in out
    assert f"serving telemetry at http://127.0.0.1:{port}" in out


def test_campaign_serve_port_announces_endpoint(capsys):
    port = _free_port()
    assert (
        main(
            [
                "campaign",
                "scaling",
                "--scale",
                "small",
                "--serve-port",
                str(port),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"http://127.0.0.1:{port}/metrics" in out
