"""CLI wiring tests for ``repro-tomography obs`` and telemetry-aware runs."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main

_CLI_COUNTER = obs.counter("test_cliobs_ticks_total", "CLI test counter.")


def _write_trace(tmp_path, events):
    path = tmp_path / "t.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


def _span(name, sid, dur, parent=None, t0=0.0):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "pid": 1,
        "t_start": t0,
        "t_end": t0 + dur,
        "dur": dur,
        "status": "ok",
        "attrs": {},
    }


def test_obs_summary_reports_mode_and_families(capsys):
    assert main(["obs", "summary"]) == 0
    out = capsys.readouterr().out
    assert "telemetry mode:" in out
    assert "declared metric families:" in out


def test_obs_export_prom_covers_instrumented_layers(capsys):
    assert main(["obs", "export", "--format", "prom"]) == 0
    out = capsys.readouterr().out
    for family in (
        "repro_pipeline_fits_total",
        "repro_kernel_calls_total",
        "repro_frequency_cache_hits_total",
        "repro_runner_trials_total",
        "repro_streaming_refits_total",
    ):
        assert f"# TYPE {family}" in out


def test_obs_export_json_round_trips_live_registry(capsys):
    with obs.use_mode("metrics"):
        _CLI_COUNTER.inc(5)
        assert main(["obs", "export", "--format", "json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert ["test_cliobs_ticks_total", [], 5] in snapshot["counters"]


def test_obs_export_reads_snapshot_file(tmp_path, capsys):
    with obs.use_mode("metrics"), obs.capture_metrics() as captured:
        _CLI_COUNTER.inc(7)
    path = tmp_path / "metrics.json"
    path.write_text(obs.render_json(captured.snapshot()))
    assert main(["obs", "export", "--snapshot", str(path)]) == 0
    assert "test_cliobs_ticks_total 7" in capsys.readouterr().out


def test_obs_spans_validates_and_renders(tmp_path, capsys):
    trace = _write_trace(
        tmp_path,
        [
            _span("child", "1:2", 0.4, parent="1:1", t0=0.1),
            _span("root", "1:1", 1.0),
        ],
    )
    assert main(["obs", "spans", str(trace), "--validate"]) == 0
    assert "schema valid" in capsys.readouterr().out
    assert main(["obs", "spans", str(trace), "--tree"]) == 0
    out = capsys.readouterr().out
    assert "└─ child" in out


def test_obs_spans_flags_invalid_traces(tmp_path, capsys):
    bad = dict(_span("x", "1:1", 1.0), status="meh")
    trace = _write_trace(tmp_path, [bad])
    assert main(["obs", "spans", str(trace), "--validate"]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_obs_spans_requires_a_trace_argument():
    with pytest.raises(SystemExit, match="provide a span-trace"):
        main(["obs", "spans"])


def test_obs_spans_missing_file_is_a_clean_error(tmp_path):
    with pytest.raises(SystemExit):
        main(["obs", "spans", str(tmp_path / "absent.jsonl")])


def test_traced_campaign_drops_telemetry_next_to_results(tmp_path, capsys):
    with obs.use_mode("trace"):
        assert (
            main(
                [
                    "campaign",
                    "scaling",
                    "--scale",
                    "small",
                    "--replicates",
                    "1",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        obs.flush()
    out = capsys.readouterr().out
    assert "metrics snapshot:" in out
    assert "span trace:" in out
    trace = tmp_path / "telemetry.jsonl"
    assert trace.exists()
    events = obs.load_events(trace)
    assert obs.validate_events(events) == []
    assert any(e["name"] == "campaign" for e in events)
    (metrics_path,) = tmp_path.glob("*_metrics.json")
    snapshot = json.loads(metrics_path.read_text())
    names = {name for name, _lv, _value in snapshot["counters"]}
    assert "repro_pipeline_fits_total" in names
