"""Unit tests for the benchmark-comparison gate (benchmarks/compare_baseline.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SCRIPT = (Path(__file__).resolve().parents[2] / "benchmarks" / "compare_baseline.py")
_spec = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_baseline)


def _row(rows, name):
    (match,) = [row for row in rows if row[0] == name]
    return match


def test_regression_flagged_on_enough_cores():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 2.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "REGRESSION"


def test_parallel_benchmark_skipped_below_core_floor():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    name, base_s, cur_s, ratio, note = _row(rows, "bench::test_sweep_workers4")
    assert note == "skipped: <4 cores"
    assert ratio is None


def test_parallel_benchmark_gated_normally_with_enough_cores():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=4)
    assert _row(rows, "bench::test_sweep_workers4")[4] == "REGRESSION"


def test_serial_benchmarks_unaffected_by_core_count():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 1.1}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    assert _row(rows, "bench::test_x")[4] == ""


def test_kernel_mismatch_reported_not_gated():
    baseline = {"bench::test_x": {"mean_s": 1.0, "kernel": "numpy"}}
    current = {"bench::test_x": {"mean_s": 10.0, "kernel": "numba"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    name, base_s, cur_s, ratio, note = _row(rows, "bench::test_x")
    assert note == "kernel: numpy vs numba"
    assert ratio is None


def test_missing_baseline_kernel_means_numpy():
    # Pre-kernel-field baselines gate normally against a numpy run.
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 2.0, "kernel": "numpy"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "REGRESSION"
    # ... but mismatch against a numba run.
    current = {"bench::test_x": {"mean_s": 2.0, "kernel": "numba"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "kernel: numpy vs numba"


def test_active_kernel_name_resolves():
    assert compare_baseline.active_kernel_name() in ("numpy", "numba")


def test_load_current_stamps_kernel(tmp_path):
    import json

    raw = {
        "benchmarks": [
            {
                "fullname": "bench::test_x",
                "group": "g",
                "stats": {"mean": 1.0, "min": 0.9},
            }
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(raw))
    current = compare_baseline.load_current(path)
    assert current["bench::test_x"]["kernel"] == (
        compare_baseline.active_kernel_name()
    )


def test_skipped_rows_render_everywhere():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    text = compare_baseline.render_text(rows)
    markdown = compare_baseline.render_markdown(rows, threshold=1.5)
    assert "skipped: <4 cores" in text
    assert "skipped: <4 cores" in markdown


def test_collect_skips_gathers_ungated_rows():
    baseline = {
        "bench::test_sweep_workers4": {"mean_s": 1.0},
        "bench::test_cached": {"mean_s": 0.01},
        "bench::test_gone": {"mean_s": 1.0},
        "bench::test_gated": {"mean_s": 1.0},
    }
    current = {
        "bench::test_sweep_workers4": {"mean_s": 2.0},
        "bench::test_cached": {"mean_s": 0.01},
        "bench::test_gated": {"mean_s": 1.1},
    }
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    skips = compare_baseline.collect_skips(rows, strict_armed=True)
    reasons = dict(skips)
    assert reasons["bench::test_sweep_workers4"] == "skipped: <4 cores"
    assert reasons["bench::test_cached"] == "cached"
    assert reasons["bench::test_gone"] == "baseline-only"
    # Gated rows (empty note) never appear in the skip list.
    assert "bench::test_gated" not in reasons


def test_collect_skips_reports_unarmed_strict_gates():
    skips = compare_baseline.collect_skips([], strict_armed=False)
    assert len(skips) == 1
    assert "REPRO_BENCH_STRICT" in skips[0][1]
    assert compare_baseline.collect_skips([], strict_armed=True) == []


def test_skip_sections_render():
    skips = [("bench::test_x", "cached")]
    text = compare_baseline.render_skips_text(skips)
    assert "1 gate(s) skipped" in text and "cached" in text
    markdown = compare_baseline.render_skips_markdown(skips)
    assert "Skipped benchmark gates" in markdown
    assert "`bench::test_x` | cached" in markdown
    empty = compare_baseline.render_skips_markdown([])
    assert "nothing skipped" in empty


def test_main_appends_skips_to_summary(tmp_path, monkeypatch):
    import json

    raw = tmp_path / "bench.json"
    raw.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "fullname": "bench::test_x",
                        "group": "g",
                        "stats": {"mean": 1.0, "min": 0.9},
                    }
                ]
            }
        )
    )
    summary = tmp_path / "summary.md"
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    assert (
        compare_baseline.main(
            [str(raw), "--markdown", str(summary), "--threshold", "1000"]
        )
        == 0
    )
    written = summary.read_text()
    assert "Benchmark timings vs committed baseline" in written
    assert "Skipped benchmark gates" in written
    assert "REPRO_BENCH_STRICT" in written


def _span(name, sid, dur, parent=None, t0=0.0):
    return {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "pid": 1,
        "t_start": t0,
        "t_end": t0 + dur,
        "dur": dur,
        "status": "ok",
        "attrs": {},
    }


def _write_trace(path, events):
    import json

    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def test_aggregate_telemetry_self_time(tmp_path):
    trace = tmp_path / "t.jsonl"
    _write_trace(
        trace,
        [
            _span("child", "1:2", 0.3, parent="1:1"),
            _span("parent", "1:1", 1.0),
            {"type": "event", "name": "noise", "id": "1:9", "pid": 1},
        ],
    )
    agg = compare_baseline.aggregate_telemetry(trace)
    assert agg["parent"] == {"count": 1, "total_s": 1.0, "self_s": 0.7}
    assert agg["child"]["self_s"] == 0.3
    assert "noise" not in agg  # zero-duration events carry no self-time


def test_aggregate_telemetry_clamps_negative_self(tmp_path):
    # Concurrent children can sum past the parent; self-time stays >= 0.
    trace = tmp_path / "t.jsonl"
    _write_trace(
        trace,
        [
            _span("parent", "1:1", 1.0),
            _span("child", "1:2", 0.8, parent="1:1"),
            _span("child", "1:3", 0.9, parent="1:1"),
        ],
    )
    agg = compare_baseline.aggregate_telemetry(trace)
    assert agg["parent"]["self_s"] == 0.0


def test_top_regressions_orders_by_delta():
    # The gate imports its attribution code from repro.obs.analyze, so
    # `obs diff` and the benchmark failure message agree on the ranking.
    baseline = {
        "a": {"count": 1, "total_s": 1.0, "self_s": 1.0},
        "b": {"count": 1, "total_s": 1.0, "self_s": 1.0},
        "c": {"count": 1, "total_s": 1.0, "self_s": 1.0},
        "d": {"count": 1, "total_s": 1.0, "self_s": 1.0},
    }
    current = {
        "a": {"count": 1, "total_s": 2.0, "self_s": 1.5},
        "b": {"count": 1, "total_s": 2.0, "self_s": 3.0},
        "c": {"count": 1, "total_s": 2.0, "self_s": 1.1},
        "d": {"count": 1, "total_s": 0.5, "self_s": 0.5},  # improved
        "new": {"count": 1, "total_s": 9.0, "self_s": 9.0},  # no baseline
    }
    deltas = compare_baseline.diff_aggregates(baseline, current)
    rows = compare_baseline.top_regressions(deltas, limit=3)
    assert [row.name for row in rows] == ["b", "a", "c"]
    assert rows[0].delta_self_s == 2.0
    text = compare_baseline.render_regressions(rows)
    assert "b: 1.000s -> 3.000s (+2.000s)" in text


def test_update_baseline_commits_span_aggregate(tmp_path, monkeypatch):
    import json

    raw = tmp_path / "bench.json"
    raw.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "fullname": "bench::test_x",
                        "group": "g",
                        "stats": {"mean": 1.0, "min": 0.9},
                    }
                ]
            }
        )
    )
    target = tmp_path / "BENCH_baseline.json"
    monkeypatch.setattr(compare_baseline, "BASELINE_PATH", target)
    current = compare_baseline.load_current(raw)
    spans = {"pipeline.fit": {"count": 2, "total_s": 1.23456, "self_s": 0.5}}
    compare_baseline.update_baseline(current, raw, spans=spans)
    written = json.loads(target.read_text())
    assert written["spans"]["pipeline.fit"]["total_s"] == 1.2346
    assert written["benchmarks"]["bench::test_x"]["mean_s"] == 1.0
