"""Unit tests for the benchmark-comparison gate (benchmarks/compare_baseline.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SCRIPT = (Path(__file__).resolve().parents[2] / "benchmarks" / "compare_baseline.py")
_spec = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_baseline)


def _row(rows, name):
    (match,) = [row for row in rows if row[0] == name]
    return match


def test_regression_flagged_on_enough_cores():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 2.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "REGRESSION"


def test_parallel_benchmark_skipped_below_core_floor():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    name, base_s, cur_s, ratio, note = _row(rows, "bench::test_sweep_workers4")
    assert note == "skipped: <4 cores"
    assert ratio is None


def test_parallel_benchmark_gated_normally_with_enough_cores():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=4)
    assert _row(rows, "bench::test_sweep_workers4")[4] == "REGRESSION"


def test_serial_benchmarks_unaffected_by_core_count():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 1.1}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    assert _row(rows, "bench::test_x")[4] == ""


def test_kernel_mismatch_reported_not_gated():
    baseline = {"bench::test_x": {"mean_s": 1.0, "kernel": "numpy"}}
    current = {"bench::test_x": {"mean_s": 10.0, "kernel": "numba"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    name, base_s, cur_s, ratio, note = _row(rows, "bench::test_x")
    assert note == "kernel: numpy vs numba"
    assert ratio is None


def test_missing_baseline_kernel_means_numpy():
    # Pre-kernel-field baselines gate normally against a numpy run.
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 2.0, "kernel": "numpy"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "REGRESSION"
    # ... but mismatch against a numba run.
    current = {"bench::test_x": {"mean_s": 2.0, "kernel": "numba"}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "kernel: numpy vs numba"


def test_active_kernel_name_resolves():
    assert compare_baseline.active_kernel_name() in ("numpy", "numba")


def test_load_current_stamps_kernel(tmp_path):
    import json

    raw = {
        "benchmarks": [
            {
                "fullname": "bench::test_x",
                "group": "g",
                "stats": {"mean": 1.0, "min": 0.9},
            }
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(raw))
    current = compare_baseline.load_current(path)
    assert current["bench::test_x"]["kernel"] == (
        compare_baseline.active_kernel_name()
    )


def test_skipped_rows_render_everywhere():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    text = compare_baseline.render_text(rows)
    markdown = compare_baseline.render_markdown(rows, threshold=1.5)
    assert "skipped: <4 cores" in text
    assert "skipped: <4 cores" in markdown
