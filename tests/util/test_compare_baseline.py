"""Unit tests for the benchmark-comparison gate (benchmarks/compare_baseline.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SCRIPT = (Path(__file__).resolve().parents[2] / "benchmarks" / "compare_baseline.py")
_spec = importlib.util.spec_from_file_location("compare_baseline", _SCRIPT)
compare_baseline = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_baseline)


def _row(rows, name):
    (match,) = [row for row in rows if row[0] == name]
    return match


def test_regression_flagged_on_enough_cores():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 2.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=8)
    assert _row(rows, "bench::test_x")[4] == "REGRESSION"


def test_parallel_benchmark_skipped_below_core_floor():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    name, base_s, cur_s, ratio, note = _row(rows, "bench::test_sweep_workers4")
    assert note == "skipped: <4 cores"
    assert ratio is None


def test_parallel_benchmark_gated_normally_with_enough_cores():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=4)
    assert _row(rows, "bench::test_sweep_workers4")[4] == "REGRESSION"


def test_serial_benchmarks_unaffected_by_core_count():
    baseline = {"bench::test_x": {"mean_s": 1.0}}
    current = {"bench::test_x": {"mean_s": 1.1}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    assert _row(rows, "bench::test_x")[4] == ""


def test_skipped_rows_render_everywhere():
    baseline = {"bench::test_sweep_workers4": {"mean_s": 1.0}}
    current = {"bench::test_sweep_workers4": {"mean_s": 10.0}}
    rows = compare_baseline.compare(baseline, current, threshold=1.5, cores=1)
    text = compare_baseline.render_text(rows)
    markdown = compare_baseline.render_markdown(rows, threshold=1.5)
    assert "skipped: <4 cores" in text
    assert "skipped: <4 cores" in markdown
