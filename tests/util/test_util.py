"""Tests for the utility helpers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import as_generator, derive_rng, spawn_seeds
from repro.util.subsets import bounded_subsets, nonempty_subsets, powerset
from repro.util.timer import Timer


def test_as_generator_from_seed():
    a = as_generator(5)
    b = as_generator(5)
    assert a.integers(0, 100) == b.integers(0, 100)


def test_as_generator_passthrough():
    generator = np.random.default_rng(0)
    assert as_generator(generator) is generator


def test_derive_rng_independent_streams():
    a = derive_rng(1, 0)
    b = derive_rng(1, 1)
    assert a.integers(0, 2**31) != b.integers(0, 2**31)


def test_derive_rng_deterministic():
    assert derive_rng(1, 0).integers(0, 2**31) == derive_rng(1, 0).integers(0, 2**31)


def test_spawn_seeds():
    seeds = spawn_seeds(3, 4)
    assert len(seeds) == 4
    assert len(set(seeds)) == 4
    assert seeds == spawn_seeds(3, 4)


def test_powerset():
    assert list(powerset([1, 2])) == [(), (1,), (2,), (1, 2)]


def test_nonempty_subsets_max_size():
    subsets = list(nonempty_subsets([1, 2, 3], max_size=2))
    assert (1, 2, 3) not in subsets
    assert len(subsets) == 6


def test_bounded_subsets_includes_full_set():
    subsets = list(bounded_subsets([1, 2, 3], max_size=1))
    assert (1, 2, 3) == subsets[-1]


def test_bounded_subsets_count_cap():
    subsets = list(bounded_subsets(list(range(10)), max_size=3, max_count=5))
    assert len(subsets) <= 6  # 5 + possibly the full set


def test_bounded_subsets_empty():
    assert list(bounded_subsets([], max_size=2)) == []


@settings(max_examples=30, deadline=None)
@given(items=st.lists(st.integers(), min_size=0, max_size=6, unique=True))
def test_bounded_subsets_no_duplicates(items):
    subsets = list(bounded_subsets(items, max_size=len(items)))
    assert len(subsets) == len(set(subsets))


def test_timer():
    with Timer() as timer:
        sum(range(100))
    assert timer.elapsed >= 0.0
