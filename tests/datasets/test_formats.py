"""Tests for the dataset file-format parsers (all offline, on fixtures)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DatasetSpec,
    derive_network,
    parse_caida,
    parse_gml,
    parse_rocketfuel,
    partition_into_ases,
)
from repro.datasets.registry import datasets_root
from repro.exceptions import DatasetError


# ----------------------------------------------------------------------
# GML (Topology Zoo)
# ----------------------------------------------------------------------
def _abilene_text() -> str:
    return (datasets_root() / "abilene.gml").read_text()


def test_gml_parses_abilene():
    parsed = parse_gml(_abilene_text())
    assert parsed.graph.number_of_nodes() == 11
    assert parsed.graph.number_of_edges() == 14
    assert parsed.labels[0] == "New York"
    assert parsed.labels[7] == "Kansas City"
    # Every node got an AS from the partition.
    assert set(parsed.asn_of) == set(parsed.graph.nodes)


def test_gml_partition_groups_are_bounded():
    parsed = parse_gml(_abilene_text(), group_size=3)
    sizes: dict = {}
    for asn in parsed.asn_of.values():
        sizes[asn] = sizes.get(asn, 0) + 1
    assert all(size <= 3 for size in sizes.values())
    assert sum(sizes.values()) == 11


def test_gml_tolerates_extra_attributes_and_quoted_numbers():
    text = """
    Creator "x"
    graph [
      directed 0
      node [ id 0 label "A" Latitude 1.5 hyper [ nested 1 ] ]
      node [ id 1 label "0" ]
      edge [ source 0 target 1 LinkSpeed "10" ]
    ]
    """
    parsed = parse_gml(text)
    assert parsed.graph.number_of_edges() == 1
    assert parsed.labels[1] == "0"  # quoted numbers stay strings


def test_gml_declared_asn_attribute_wins():
    text = """
    graph [
      node [ id 0 asn 10 ]
      node [ id 1 asn 10 ]
      node [ id 2 asn 20 ]
      edge [ source 0 target 1 ]
      edge [ source 1 target 2 ]
    ]
    """
    parsed = parse_gml(text)
    assert parsed.asn_of == {0: 10, 1: 10, 2: 20}


@pytest.mark.parametrize(
    "text",
    [
        "not gml at all",
        "graph [ ]",
        "graph [ node [ id 0 ] ]",
        "graph [ node [ label \"missing id\" ] edge [ source 0 target 1 ] ]",
        "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 ] ]",
        "graph [ node [ id",
    ],
)
def test_gml_malformed_rejected(text):
    with pytest.raises(DatasetError):
        parse_gml(text)


# ----------------------------------------------------------------------
# Rocketfuel-style ISP maps
# ----------------------------------------------------------------------
def _rocketfuel_text() -> str:
    return (datasets_root() / "rocketfuel-1221.edges").read_text()


def test_rocketfuel_parses_fixture():
    parsed = parse_rocketfuel(_rocketfuel_text())
    assert parsed.graph.number_of_nodes() == 15
    assert parsed.graph.number_of_edges() == 24
    # POPs become ASes, numbered in sorted name order.
    pops = {"Adelaide", "Brisbane", "Cairns", "Canberra", "Melbourne",
            "Perth", "Sydney"}
    assert len(set(parsed.asn_of.values())) == len(pops)


def test_rocketfuel_pop_grouping_is_line_order_independent():
    text = _rocketfuel_text()
    lines = [
        line
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    ]
    reversed_text = "\n".join(reversed(lines))
    a = parse_rocketfuel(text)
    b = parse_rocketfuel(reversed_text)
    # Node numbering differs, but the POP -> AS map is identical.
    def pops_by_asn(parsed):
        result: dict = {}
        for node, asn in parsed.asn_of.items():
            result.setdefault(asn, set()).add(parsed.labels[node])
        return {asn: frozenset(names) for asn, names in result.items()}

    assert pops_by_asn(a) == pops_by_asn(b)


def test_rocketfuel_nodes_without_pop_become_singletons():
    parsed = parse_rocketfuel("a@X b@X 1\nb@X lonely 2\n")
    lonely = [n for n, label in parsed.labels.items() if label == "lonely"]
    assert len(lonely) == 1
    asn = parsed.asn_of[lonely[0]]
    assert list(parsed.asn_of.values()).count(asn) == 1


@pytest.mark.parametrize(
    "text",
    ["a@X", "a@X b@X c@X d@X", "a@X b@X notanumber", "@X b@X 1", "a@ b@X 1"],
)
def test_rocketfuel_malformed_rejected(text):
    with pytest.raises(DatasetError):
        parse_rocketfuel(text)


# ----------------------------------------------------------------------
# CAIDA AS relationships
# ----------------------------------------------------------------------
def _caida_text() -> str:
    return (datasets_root() / "caida-asrel.txt").read_text()


def test_caida_parses_fixture():
    parsed, relationships = parse_caida(_caida_text())
    assert parsed.graph.number_of_edges() == len(relationships) == 33
    # Every AS is its own correlation set.
    assert parsed.asn_of == {n: n for n in parsed.graph.nodes}
    assert relationships[(174, 3356)] == 0
    assert relationships[(6939, 13335)] == -1


@pytest.mark.parametrize(
    "text",
    ["174|3356", "174|x|0", "174|3356|7", "174|174|0"],
)
def test_caida_malformed_rejected(text):
    with pytest.raises(DatasetError):
        parse_caida(text)


# ----------------------------------------------------------------------
# Derivation
# ----------------------------------------------------------------------
def test_derive_network_deterministic():
    parsed = parse_gml(_abilene_text())
    spec = DatasetSpec(num_vantage_points=3, num_destinations=6, num_paths=18)
    a = derive_network(parsed, spec, "abilene")
    b = derive_network(parsed, spec, "abilene")
    assert [p.links for p in a.paths] == [p.links for p in b.paths]
    assert [(link.src, link.dst, link.asn) for link in a.links] == [
        (link.src, link.dst, link.asn) for link in b.links
    ]


def test_derive_network_seed_changes_selection():
    parsed = parse_gml(_abilene_text())
    a = derive_network(parsed, DatasetSpec(seed=1), "abilene")
    b = derive_network(parsed, DatasetSpec(seed=2), "abilene")
    assert [p.links for p in a.paths] != [p.links for p in b.paths]


def test_derive_network_clamps_oversized_requests():
    parsed = parse_caida(_caida_text())[0]
    spec = DatasetSpec(num_vantage_points=500, num_destinations=500, num_paths=5000)
    network = derive_network(parsed, spec, "caida")
    assert network.num_paths >= 1


def test_partition_handles_disconnected_graphs():
    import networkx as nx

    graph = nx.Graph()
    graph.add_edge(0, 1)
    graph.add_edge(10, 11)
    asn_of = partition_into_ases(graph, group_size=2)
    assert set(asn_of) == {0, 1, 10, 11}
    assert len(set(asn_of.values())) == 2
