"""Tests for the dataset registry and the on-disk parse cache."""

from __future__ import annotations

import json

import pytest

from repro.datasets import (
    DatasetSpec,
    GmlLoader,
    dataset_info,
    dataset_names,
    get_dataset,
    load_dataset,
    load_with_cache,
    register_dataset,
)
from repro.datasets.cache import cache_key
from repro.datasets.registry import DATASETS, resolve_dataset_path
from repro.exceptions import DatasetError

#: Every dataset this PR bundles; keep in sync with the registry.
BUNDLED = {
    "abilene",
    "sample-eu-isp",
    "rocketfuel-1221",
    "caida-asrel",
    "saved-peering",
    "brite-dense",
    "sparse-traceroute",
}


def test_bundled_datasets_registered():
    assert BUNDLED <= set(dataset_names())


def test_every_bundled_dataset_loads_offline():
    """The acceptance gate: all fixtures load without network access."""
    for name in dataset_names():
        network = load_dataset(name)
        assert network.name == name
        assert network.num_links >= 1
        assert network.num_paths >= 1
        assert len(network.correlation_sets) >= 1


def test_load_is_deterministic():
    a = load_dataset("abilene", use_cache=False)
    b = load_dataset("abilene", use_cache=False)
    assert [p.links for p in a.paths] == [p.links for p in b.paths]
    assert [(link.src, link.dst, link.asn) for link in a.links] == [
        (link.src, link.dst, link.asn) for link in b.links
    ]


def test_unknown_dataset_rejected():
    with pytest.raises(DatasetError, match="unknown dataset"):
        get_dataset("atlantis")
    with pytest.raises(DatasetError, match="unknown dataset"):
        load_dataset("atlantis")


def test_duplicate_registration_rejected():
    entry = DATASETS["abilene"]
    with pytest.raises(DatasetError, match="already registered"):
        register_dataset(entry)
    register_dataset(entry, replace_existing=True)  # no-op, allowed


def test_missing_file_mentions_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_DATASETS_DIR", str(tmp_path))
    with pytest.raises(DatasetError, match="REPRO_DATASETS_DIR"):
        resolve_dataset_path(get_dataset("abilene"))


def test_dataset_info_includes_stats():
    info = dataset_info("saved-peering")
    assert info["format"] == "repro-json"
    assert info["num_links"] == 11.0
    assert info["description"]


def test_spec_validation():
    with pytest.raises(DatasetError):
        DatasetSpec(num_paths=0).validate()
    with pytest.raises(DatasetError):
        DatasetSpec(group_size=0).validate()
    with pytest.raises(DatasetError):
        DatasetSpec(num_vantage_points=0).validate()


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------
def test_cache_writes_and_serves(tmp_path):
    entry = get_dataset("abilene")
    path = resolve_dataset_path(entry)
    first = load_with_cache(
        "abilene", entry.loader, path, entry.spec, cache_dir=tmp_path
    )
    cached_files = list(tmp_path.glob("abilene-*.json"))
    assert len(cached_files) == 1
    second = load_with_cache(
        "abilene", entry.loader, path, entry.spec, cache_dir=tmp_path
    )
    assert (first.incidence == second.incidence).all()
    assert [
        (link.src, link.dst, link.asn, link.router_links)
        for link in first.links
    ] == [(link.src, link.dst, link.asn, link.router_links) for link in second.links]


def test_cache_hit_skips_the_parser(tmp_path):
    entry = get_dataset("abilene")
    path = resolve_dataset_path(entry)
    load_with_cache("abilene", entry.loader, path, entry.spec, cache_dir=tmp_path)

    class ExplodingLoader:
        format_name = entry.loader.format_name
        description = "must not be called"

        def load(self, p, spec):
            raise AssertionError("cache miss: parser was invoked")

        def cache_token(self, p):
            return entry.loader.cache_token(p)

    network = load_with_cache(
        "abilene", ExplodingLoader(), path, entry.spec, cache_dir=tmp_path
    )
    assert network.num_links >= 1


def test_cache_key_tracks_content_and_spec(tmp_path):
    loader = GmlLoader()
    a = tmp_path / "a.gml"
    b = tmp_path / "b.gml"
    a.write_text("graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] ]")
    b.write_text("graph [ node [ id 0 ] node [ id 2 ] edge [ source 0 target 2 ] ]")
    spec = DatasetSpec()
    assert cache_key(loader, a, spec) != cache_key(loader, b, spec)
    assert cache_key(loader, a, spec) != cache_key(loader, a, DatasetSpec(seed=99))
    assert cache_key(loader, a, spec) == cache_key(loader, a, DatasetSpec())


def test_corrupt_cache_entry_falls_back_to_parse(tmp_path):
    entry = get_dataset("abilene")
    path = resolve_dataset_path(entry)
    load_with_cache("abilene", entry.loader, path, entry.spec, cache_dir=tmp_path)
    (cached,) = tmp_path.glob("abilene-*.json")
    cached.write_text(json.dumps({"format_version": 99}))
    network = load_with_cache(
        "abilene", entry.loader, path, entry.spec, cache_dir=tmp_path
    )
    assert network.num_links >= 1
    # The fresh parse repaired the entry.
    assert json.loads(cached.read_text())["format_version"] == 1


def test_synthetic_datasets_cache_too(tmp_path):
    entry = get_dataset("brite-dense")
    assert entry.synthetic
    load_with_cache("brite-dense", entry.loader, None, entry.spec, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("brite-dense-*.json"))) == 1
