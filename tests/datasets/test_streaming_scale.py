"""Streaming parsers, node census, and internet-scale derivation.

The memory-bounded ingestion path: :func:`iter_caida_edges` /
:func:`load_caida_edge_arrays` stream as-rel files into flat arrays,
:func:`scan_nodes` counts declared nodes without building a graph, and
:func:`derive_network_compact` derives identical monitored networks
through the dense and the sparse (CSR) construction — including an
in-test 10k-node synthetic graph, so the internet-scale claim is
exercised on every tier-1 run without committing a large fixture.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    PowerLawAsLoader,
    dataset_names,
    derive_network_compact,
    generate_powerlaw_edges,
    iter_caida_edges,
    load_caida_edge_arrays,
    parse_caida,
    parse_gml,
    scan_nodes,
)
from repro.datasets.registry import datasets_root
from repro.exceptions import DatasetError
from repro.topology.routing import CompactGraph


# ----------------------------------------------------------------------
# Streaming CAIDA ingestion
# ----------------------------------------------------------------------
def test_iter_caida_edges_streams_the_fixture():
    text = (datasets_root() / "caida-asrel.txt").read_text()
    triples = list(iter_caida_edges(text.splitlines()))
    parsed, relationships = parse_caida(text)
    assert len(triples) == len(relationships) == 33
    for a, b, relationship in triples:
        stored = relationships.get((a, b), relationships.get((b, a)))
        assert stored == relationship


@pytest.mark.parametrize(
    "line,match",
    [
        ("174|3356", "expected 'as1\\|as2\\|rel'"),
        ("174|x|0", "non-integer field"),
        ("174|3356|7", "unknown relationship 7"),
        ("174|3356|2", "unknown relationship 2"),
        ("174|174|0", "self-loop on AS 174"),
    ],
)
def test_iter_caida_edges_rejects_degenerate_lines(line, match):
    lines = ["# comment", "", "1|2|0", line]
    with pytest.raises(DatasetError, match=match) as excinfo:
        list(iter_caida_edges(lines))
    # The 1-based line number of the offending line is in the message.
    assert "line 4" in str(excinfo.value)


def test_load_caida_edge_arrays_compacts_node_ids():
    lines = ["3356|174|0", "174|65000|-1", "# c", "65000|3356|0"]
    arrays = load_caida_edge_arrays(lines)
    assert list(arrays.nodes) == [174, 3356, 65000]
    assert arrays.num_nodes == 3
    assert arrays.num_edges == 3
    # Endpoints index into the sorted AS list; file order is preserved.
    assert list(arrays.nodes[arrays.src]) == [3356, 174, 65000]
    assert list(arrays.nodes[arrays.dst]) == [174, 65000, 3356]
    assert list(arrays.relationships) == [0, -1, 0]
    assert arrays.nbytes < 10_000


def test_load_caida_edge_arrays_matches_eager_parse():
    text = (datasets_root() / "caida-asrel.txt").read_text()
    arrays = load_caida_edge_arrays(text.splitlines())
    parsed, _ = parse_caida(text)
    assert set(arrays.nodes) == set(parsed.graph.nodes)
    edges = {
        frozenset((int(arrays.nodes[s]), int(arrays.nodes[d])))
        for s, d in zip(arrays.src, arrays.dst)
    }
    assert edges == {frozenset(edge) for edge in parsed.graph.edges}


def test_load_caida_edge_arrays_rejects_empty_input():
    with pytest.raises(DatasetError, match="no relationships"):
        load_caida_edge_arrays(["# only", "# comments"])


def test_load_caida_edge_arrays_grows_past_initial_capacity():
    lines = [f"{a}|{a + 1}|0" for a in range(1, 3000)]
    arrays = load_caida_edge_arrays(lines)
    assert arrays.num_edges == 2999
    assert arrays.num_nodes == 3000


# ----------------------------------------------------------------------
# GML degenerate inputs
# ----------------------------------------------------------------------
def test_gml_duplicate_node_ids_collapse_deterministically():
    """Topology Zoo files repeat ids; the last block's label wins."""
    text = """
    graph [
      node [ id 0 label "A" ]
      node [ id 0 label "B" ]
      node [ id 1 ]
      edge [ source 0 target 1 ]
    ]
    """
    parsed = parse_gml(text)
    assert parsed.graph.number_of_nodes() == 2
    assert parsed.graph.number_of_edges() == 1
    assert parsed.labels[0] == "B"


def test_gml_duplicate_ids_with_only_self_loops_rejected():
    text = "graph [ node [ id 0 ] node [ id 0 ] edge [ source 0 target 0 ] ]"
    with pytest.raises(DatasetError, match="no edges"):
        parse_gml(text)


# ----------------------------------------------------------------------
# Streaming node census (scan_nodes)
# ----------------------------------------------------------------------
def test_scan_nodes_counts_caida_and_gml(tmp_path):
    assert scan_nodes(datasets_root() / "caida-asrel.txt", "caida") == 20
    gml_path = datasets_root() / "abilene.gml"
    assert scan_nodes(gml_path, "gml") == 11
    # Formats without a streaming census are skipped, not guessed.
    assert scan_nodes(gml_path, "rocketfuel") is None


def test_scan_nodes_max_nodes_guard(tmp_path):
    path = tmp_path / "big.txt"
    path.write_text("\n".join(f"{a}|{a + 1}|0" for a in range(1, 100)))
    assert scan_nodes(path, "caida", max_nodes=200) == 100
    with pytest.raises(DatasetError, match="more than 10 nodes"):
        scan_nodes(path, "caida", max_nodes=10)


def test_scan_nodes_missing_file_is_a_dataset_error(tmp_path):
    with pytest.raises(DatasetError):
        scan_nodes(tmp_path / "absent.txt", "caida")


# ----------------------------------------------------------------------
# Compact derivation, bit-identity, and the 10k-node graph
# ----------------------------------------------------------------------
def _spec(**overrides) -> DatasetSpec:
    base = dict(
        num_vantage_points=4, num_destinations=30, num_paths=60, seed=3
    )
    base.update(overrides)
    return DatasetSpec(**base)


def _assert_networks_identical(dense, sparse):
    assert dense.num_links == sparse.num_links
    assert dense.num_paths == sparse.num_paths
    for dense_link, sparse_link in zip(dense.links, sparse.links):
        assert dense_link.src == sparse_link.src
        assert dense_link.dst == sparse_link.dst
        assert dense_link.asn == sparse_link.asn
        assert dense_link.router_links == sparse_link.router_links
    for dense_path, sparse_path in zip(dense.paths, sparse.paths):
        assert dense_path.index == sparse_path.index
        assert dense_path.links == sparse_path.links


def test_derive_network_compact_modes_are_bit_identical():
    src, dst = generate_powerlaw_edges(400, attachment=2, seed=9)
    dense = derive_network_compact(400, src, dst, _spec(), "t", sparse=False)
    sparse = derive_network_compact(400, src, dst, _spec(), "t", sparse=True)
    _assert_networks_identical(dense, sparse)


def test_derive_network_compact_records_construction_stats():
    src, dst = generate_powerlaw_edges(400, attachment=2, seed=9)
    stats_dense: dict = {}
    stats_sparse: dict = {}
    tracemalloc.start()
    try:
        derive_network_compact(
            400, src, dst, _spec(), "t", sparse=False, stats=stats_dense
        )
        derive_network_compact(
            400, src, dst, _spec(), "t", sparse=True, stats=stats_sparse
        )
    finally:
        tracemalloc.stop()
    assert stats_dense["construction_bytes"] > 0
    assert stats_sparse["construction_bytes"] > 0
    # The whole point: nx dicts + route tuples vs CSR arrays.
    assert (
        stats_dense["construction_bytes"]
        > 3 * stats_sparse["construction_bytes"]
    )
    # Without tracing the dict is left untouched, not poisoned with zeros.
    untraced: dict = {}
    derive_network_compact(400, src, dst, _spec(), "t", stats=untraced)
    assert "construction_bytes" not in untraced


def test_derive_network_compact_rejects_degenerate_graphs():
    with pytest.raises(DatasetError, match="at least two nodes"):
        derive_network_compact(
            1, np.zeros(0, np.uint32), np.zeros(0, np.uint32), _spec(), "t"
        )
    # A graph with no edges has no usable routes.
    with pytest.raises(DatasetError, match="no usable routes"):
        derive_network_compact(
            50, np.zeros(0, np.uint32), np.zeros(0, np.uint32), _spec(), "t"
        )


def test_ten_thousand_node_synthetic_graph():
    """The ROADMAP-scale graph, generated and derived in-test."""
    num_nodes = 10_000
    src, dst = generate_powerlaw_edges(num_nodes, attachment=2, seed=17)
    # Edge count is closed-form: seed clique + attachment per new node.
    assert src.shape == dst.shape == (3 + 2 * (num_nodes - 3),)
    assert src.dtype == dst.dtype == np.uint32
    # Preferential attachment reaches every node.
    graph = CompactGraph.from_edges(num_nodes, src, dst)
    assert graph.num_nodes == num_nodes
    assert graph.nbytes < 500_000
    network = derive_network_compact(
        num_nodes,
        src,
        dst,
        _spec(num_vantage_points=3, num_destinations=20, num_paths=30),
        "powerlaw-10k",
        sparse=True,
    )
    assert network.num_paths > 0
    assert all(path.links for path in network.paths)


def test_powerlaw_loader_is_not_registered():
    """Registry campaigns must not sweep the 10k-node generator."""
    loader = PowerLawAsLoader(num_nodes=300, attachment=2)
    assert "powerlaw-as" not in {name for name in dataset_names()}
    network = loader.load(None, _spec(num_paths=40))
    assert network.name == "powerlaw-as-300"
    assert network.num_paths > 0
    assert loader.cache_token(None) == b"powerlaw-as:300:2"
