"""Parallel runs must be bit-identical to serial runs, driver by driver.

The runner's core guarantee: a sweep's merged result is a pure function of
its trial specs, so ``workers=4`` — whether process-sharded or
thread-sharded — reproduces ``workers=1`` (serial, in-process) exactly,
including the raw per-link error arrays, not just summary statistics.
Thread shards additionally share the parent's packed words zero-copy:
nothing may cross a pickle boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablation import run_ablation
from repro.experiments.config import TINY
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.scaling import run_algorithm1_scaling


@pytest.fixture(scope="module")
def figure4_serial():
    return run_figure4(TINY, seed=2, workers=1)


@pytest.fixture(scope="module")
def figure4_parallel():
    return run_figure4(TINY, seed=2, workers=4)


def test_figure4_rows_bit_identical(figure4_serial, figure4_parallel):
    assert set(figure4_serial.rows) == set(figure4_parallel.rows)
    for key, serial in figure4_serial.rows.items():
        parallel = figure4_parallel.rows[key]
        assert serial.mean_absolute_error == parallel.mean_absolute_error
        assert np.array_equal(serial.errors, parallel.errors)
        assert serial.subset_mean_absolute_error == (
            parallel.subset_mean_absolute_error
        )
        assert serial.num_links_scored == parallel.num_links_scored


def test_figure4_panels_bit_identical(figure4_serial, figure4_parallel):
    assert figure4_serial.subset_rows == figure4_parallel.subset_rows
    assert figure4_serial.topology_stats == figure4_parallel.topology_stats
    assert figure4_serial.to_table("brite") == figure4_parallel.to_table("brite")
    assert figure4_serial.to_table("sparse") == figure4_parallel.to_table("sparse")


def test_figure3_bit_identical():
    serial = run_figure3(TINY, seed=1, workers=1)
    parallel = run_figure3(TINY, seed=1, workers=4)
    assert set(serial.rows) == set(parallel.rows)
    for key, metrics in serial.rows.items():
        assert metrics.detection_rate == parallel.rows[key].detection_rate
        assert (metrics.false_positive_rate == parallel.rows[key].false_positive_rate)
    assert serial.topology_stats == parallel.topology_stats


def test_ablation_bit_identical():
    serial = run_ablation(TINY, seed=5, workers=1)
    parallel = run_ablation(TINY, seed=5, workers=4)
    assert serial.errors == parallel.errors


def test_scaling_bit_identical():
    serial = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1, 2], workers=1)
    parallel = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1, 2], workers=2)
    assert serial.num_paths == parallel.num_paths
    for a, b in zip(serial.rows, parallel.rows):
        assert a.requested_subset_size == b.requested_subset_size
        assert a.num_unknowns == b.num_unknowns
        assert a.num_equations == b.num_equations
        assert a.rank == b.rank
        assert a.num_identifiable == b.num_identifiable


def test_workers_auto_matches_serial():
    """``workers=None`` (all local CPUs) is bit-identical too."""
    serial = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1], workers=1)
    auto = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1], workers=None)
    assert serial.rows[0].num_equations == auto.rows[0].num_equations
    assert serial.rows[0].rank == auto.rows[0].rank


def test_figure4_thread_executor_bit_identical(figure4_serial):
    threaded = run_figure4(TINY, seed=2, workers=4, executor="thread")
    assert set(figure4_serial.rows) == set(threaded.rows)
    for key, serial in figure4_serial.rows.items():
        assert np.array_equal(serial.errors, threaded.rows[key].errors)
        assert serial.mean_absolute_error == threaded.rows[key].mean_absolute_error
    assert figure4_serial.subset_rows == threaded.subset_rows


def test_figure3_thread_executor_bit_identical():
    serial = run_figure3(TINY, seed=1, workers=1)
    threaded = run_figure3(TINY, seed=1, workers=4, executor="thread")
    assert set(serial.rows) == set(threaded.rows)
    for key, metrics in serial.rows.items():
        assert metrics.detection_rate == threaded.rows[key].detection_rate
        assert (
            metrics.false_positive_rate == threaded.rows[key].false_positive_rate
        )


def test_ablation_thread_executor_bit_identical():
    serial = run_ablation(TINY, seed=5, workers=1)
    threaded = run_ablation(TINY, seed=5, workers=4, executor="thread")
    assert serial.errors == threaded.errors


def test_scaling_thread_executor_bit_identical():
    serial = run_algorithm1_scaling(TINY, seed=3, subset_sizes=[1, 2], workers=1)
    threaded = run_algorithm1_scaling(
        TINY, seed=3, subset_sizes=[1, 2], workers=2, executor="thread"
    )
    for a, b in zip(serial.rows, threaded.rows):
        assert a.num_equations == b.num_equations
        assert a.rank == b.rank
        assert a.num_identifiable == b.num_identifiable


def test_thread_shards_never_pickle_observations(monkeypatch):
    """Thread mode is zero-copy: no observation backend crosses pickle.

    A counting wrapper around ``PackedBackend.__getstate__`` (the hook
    every pickle of a packed observation store must pass through) proves
    the whole thread-sharded figure4 sweep ships nothing by value.
    """
    from repro.model.packed import PackedBackend

    calls = []
    original = PackedBackend.__getstate__

    def spying_getstate(self):
        calls.append(1)
        return original(self)

    monkeypatch.setattr(PackedBackend, "__getstate__", spying_getstate)
    result = run_figure4(TINY, seed=2, workers=4, executor="thread")
    assert result.rows  # the sweep really ran
    assert calls == []
