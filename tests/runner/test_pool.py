"""Unit tests for the sharded trial executor (process and thread modes)."""

from __future__ import annotations

import os
import time

import pytest

from repro.runner import (
    EXECUTORS,
    ShardReport,
    TrialError,
    TrialSpec,
    partition_specs,
    resolve_executor,
    resolve_workers,
    run_trials,
)


def _spec(index, group=(), cost=1.0, **params):
    return TrialSpec(
        campaign="unit",
        topology="t",
        scenario=f"s{index}",
        estimator=f"e{index}",
        seeds=(42,),
        index=index,
        group=group,
        cost=cost,
        params=params,
    )


def echo_trial(spec, cache):
    """Pure trial: payload derived only from the spec."""
    return (spec.index, spec.scenario, sum(spec.seeds))


def cache_counting_trial(spec, cache):
    """Counts how many trials ran before it on the same shard."""
    count = cache.get("count", 0)
    cache["count"] = count + 1
    return count


def failing_trial(spec, cache):
    if spec.index == 2:
        raise ValueError("boom on index 2")
    return spec.index


def crashing_trial(spec, cache):
    if spec.params.get("crash"):
        os._exit(17)  # simulate a segfault: no Python traceback possible
    return spec.index


def sleeping_trial(spec, cache):
    time.sleep(spec.params.get("sleep", 0.0))
    return spec.index


class TestResolveWorkers:
    def test_explicit(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    def test_auto_uses_local_cpus(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestResolveExecutor:
    def test_explicit_modes_pass_through(self):
        assert resolve_executor("thread") == "thread"
        assert resolve_executor("process") == "process"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("greenlet")
        assert set(EXECUTORS) == {"auto", "thread", "process"}

    def test_auto_follows_the_active_kernel(self, monkeypatch):
        from repro.model import kernels

        expected = "thread" if kernels.active_kernel().releases_gil else "process"
        assert resolve_executor("auto") == expected
        assert resolve_executor(None) == expected
        # A GIL-free kernel flips auto to threads.
        monkeypatch.setattr(
            type(kernels.active_kernel()), "releases_gil", True
        )
        assert resolve_executor("auto") == "thread"


class TestPartition:
    def test_groups_stay_together(self):
        specs = [_spec(i, group=("g", i % 2)) for i in range(6)]
        shards = partition_specs(specs, 2)
        assert len(shards) == 2
        for shard in shards:
            assert len({spec.group for spec in shard}) == 1

    def test_deterministic_and_complete(self):
        specs = [_spec(i, group=("g", i % 3), cost=1.0 + i) for i in range(9)]
        first = partition_specs(specs, 4)
        second = partition_specs(specs, 4)
        assert [[s.index for s in shard] for shard in first] == [
            [s.index for s in shard] for shard in second
        ]
        assert sorted(s.index for shard in first for s in shard) == list(range(9))

    def test_respects_shard_limit(self):
        specs = [_spec(i) for i in range(10)]
        assert len(partition_specs(specs, 3)) == 3
        # Never more shards than groups.
        assert len(partition_specs(specs[:2], 8)) == 2

    def test_costs_balance_loads(self):
        # One heavy group and three light ones over two shards: the heavy
        # group must sit alone.
        specs = [_spec(0, group=("heavy",), cost=10.0)] + [
            _spec(i, group=(f"light{i}",), cost=1.0) for i in range(1, 4)
        ]
        shards = partition_specs(specs, 2)
        heavy_shard = [s for s in shards if any(x.index == 0 for x in s)][0]
        assert len(heavy_shard) == 1


class TestRunTrials:
    def test_empty(self):
        assert run_trials(echo_trial, [], workers=1) == []

    def test_serial_results_in_index_order(self):
        specs = [_spec(i) for i in (3, 0, 2, 1)]
        results = run_trials(echo_trial, specs, workers=1)
        assert [r.spec.index for r in results] == [0, 1, 2, 3]
        assert [r.payload[0] for r in results] == [0, 1, 2, 3]

    def test_parallel_matches_serial(self):
        specs = [_spec(i, group=("g", i % 3)) for i in range(9)]
        serial = run_trials(echo_trial, specs, workers=1)
        parallel = run_trials(echo_trial, specs, workers=4)
        assert [r.payload for r in serial] == [r.payload for r in parallel]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            run_trials(echo_trial, [_spec(1), _spec(1)], workers=1)

    def test_shard_local_cache_is_shared_serially(self):
        specs = [_spec(i) for i in range(3)]
        results = run_trials(cache_counting_trial, specs, workers=1)
        # One shard, one cache: each trial sees its predecessors.
        assert [r.payload for r in results] == [0, 1, 2]

    def test_progress_reports(self):
        specs = [_spec(i, group=("g", i % 2)) for i in range(4)]
        reports = []
        run_trials(echo_trial, specs, workers=2, progress=reports.append)
        assert len(reports) == 2
        assert all(isinstance(r, ShardReport) for r in reports)
        seen = [name for r in reports for name, _ in r.trials]
        assert len(seen) == 4
        assert all("unit" in name for name in seen)
        assert all("shard" in r.describe() for r in reports)

    def test_trial_timing_recorded(self):
        results = run_trials(echo_trial, [_spec(0)], workers=1)
        assert results[0].elapsed >= 0.0
        assert results[0].worker_pid == os.getpid()


class TestThreadExecutor:
    def test_thread_matches_serial_and_process(self):
        specs = [_spec(i, group=("g", i % 3)) for i in range(9)]
        serial = run_trials(echo_trial, specs, workers=1)
        threaded = run_trials(echo_trial, specs, workers=4, executor="thread")
        assert [r.payload for r in serial] == [r.payload for r in threaded]

    def test_thread_shards_share_the_parent_pid(self):
        specs = [_spec(i, group=("g", i)) for i in range(4)]
        results = run_trials(echo_trial, specs, workers=4, executor="thread")
        assert {r.worker_pid for r in results} == {os.getpid()}

    def test_thread_shard_local_cache(self):
        specs = [_spec(i, group=("g", i % 2)) for i in range(6)]
        results = run_trials(
            cache_counting_trial, specs, workers=2, executor="thread"
        )
        # Two shards of three trials each: counts restart per shard cache.
        assert sorted(r.payload for r in results) == [0, 0, 1, 1, 2, 2]

    def test_thread_failure_names_the_trial(self):
        specs = [_spec(i, group=("g", i)) for i in range(4)]
        with pytest.raises(TrialError) as excinfo:
            run_trials(failing_trial, specs, workers=2, executor="thread")
        assert excinfo.value.spec is not None
        assert excinfo.value.spec.index == 2
        assert "boom on index 2" in str(excinfo.value)

    def test_thread_timeout_raises_without_joining_the_shard(self):
        specs = [
            _spec(0, group=("fast",)),
            _spec(1, group=("slow",), sleep=2.0),
        ]
        start = time.monotonic()
        with pytest.raises(TrialError, match="timed out"):
            run_trials(
                sleeping_trial, specs, workers=2, timeout=0.3, executor="thread"
            )
        # The abandoned sleeping shard must not delay the error.
        assert time.monotonic() - start < 1.5

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_trials(echo_trial, [_spec(0)], workers=2, executor="greenlet")


class TestFaultPaths:
    def test_serial_failure_names_the_trial(self):
        specs = [_spec(i) for i in range(4)]
        with pytest.raises(TrialError) as excinfo:
            run_trials(failing_trial, specs, workers=1)
        assert "unit / t / s2 / e2" in str(excinfo.value)
        assert excinfo.value.spec is not None
        assert excinfo.value.spec.index == 2
        assert "boom on index 2" in excinfo.value.traceback_text

    def test_parallel_failure_names_the_trial(self):
        specs = [_spec(i, group=("g", i)) for i in range(4)]
        with pytest.raises(TrialError) as excinfo:
            run_trials(failing_trial, specs, workers=2)
        assert excinfo.value.spec is not None
        assert excinfo.value.spec.index == 2
        assert "boom on index 2" in str(excinfo.value)

    def test_worker_death_surfaces_the_shard(self):
        specs = [_spec(0, group=("a",)), _spec(1, group=("b",), crash=True)]
        with pytest.raises(TrialError) as excinfo:
            run_trials(crashing_trial, specs, workers=2)
        assert "worker process died" in str(excinfo.value)
        assert "unit / t / s1 / e1" in str(excinfo.value)

    def test_timeout_does_not_hang(self):
        specs = [
            _spec(0, group=("fast",)),
            _spec(1, group=("slow",), sleep=1.5),
        ]
        start = time.monotonic()
        with pytest.raises(TrialError, match="timed out"):
            run_trials(sleeping_trial, specs, workers=2, timeout=0.3)
        assert time.monotonic() - start < 10.0
