"""Tests for named campaigns, JSON sweep specs, and on-disk results."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner.campaign import (
    CAMPAIGNS,
    CampaignSpec,
    load_campaign_spec,
    run_campaign,
    validate_output_dir,
    write_outcome,
)


def test_registry_contents():
    assert set(CAMPAIGNS) == {
        "figure3",
        "figure4",
        "scaling",
        "ablation",
        "realworld",
        "mitigation",
        "scaling-topology",
    }
    for definition in CAMPAIGNS.values():
        assert definition.description


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown campaign"):
        CampaignSpec(campaign="figure9")
    with pytest.raises(ValueError, match="replicates"):
        CampaignSpec(campaign="scaling", replicates=0)
    with pytest.raises(ValueError, match="serve_port"):
        CampaignSpec(campaign="scaling", serve_port=99999)
    with pytest.raises(ValueError, match="serve_port"):
        CampaignSpec(campaign="scaling", serve_port=0)
    assert CampaignSpec(campaign="scaling", serve_port=9109).serve_port == 9109


def test_load_spec(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(
        json.dumps({"campaign": "scaling", "scale": "small", "seed": 9, "workers": 2})
    )
    spec = load_campaign_spec(path)
    assert spec.campaign == "scaling"
    assert spec.seed == 9
    assert spec.workers == 2
    assert spec.replicates == 1


def test_load_spec_rejects_unknown_keys(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({"campaign": "scaling", "bogus": 1}))
    with pytest.raises(ValueError, match="unknown keys"):
        load_campaign_spec(path)


def test_load_spec_requires_campaign(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({"scale": "small"}))
    with pytest.raises(ValueError, match="missing 'campaign'"):
        load_campaign_spec(path)


def test_load_spec_rejects_non_object(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(["scaling"]))
    with pytest.raises(ValueError, match="JSON object"):
        load_campaign_spec(path)


@pytest.fixture(scope="module")
def scaling_outcome():
    """A replicated scaling campaign, sharded over two processes."""
    spec = CampaignSpec(campaign="scaling", seed=3, workers=2, replicates=2)
    return run_campaign(spec)


def test_run_campaign_replicates(scaling_outcome):
    outcome = scaling_outcome
    assert len(outcome.replicates) == 2
    assert len(set(outcome.seeds)) == 2
    assert outcome.num_trials == 6
    assert outcome.elapsed > 0.0
    for replicate in outcome.replicates:
        assert "naive bound" in replicate.rendered
        assert len(replicate.summary["rows"]) == 3
        assert replicate.result.num_paths > 0


def test_run_campaign_reports_shards(scaling_outcome):
    reported = [name for report in scaling_outcome.shards for name, _ in report.trials]
    assert len(reported) == 6
    assert all(name.startswith("scaling") for name in reported)


def test_replicates_match_direct_runs(scaling_outcome):
    """Replicate results equal a direct run at the replicate's seed."""
    from repro.experiments.config import SMALL
    from repro.experiments.scaling import run_algorithm1_scaling

    for replicate in scaling_outcome.replicates:
        direct = run_algorithm1_scaling(SMALL, seed=replicate.seed)
        assert [row.num_equations for row in direct.rows] == [
            row.num_equations for row in replicate.result.rows
        ]
        assert [row.rank for row in direct.rows] == [
            row.rank for row in replicate.result.rows
        ]


def test_write_outcome(scaling_outcome, tmp_path):
    path = write_outcome(scaling_outcome, tmp_path / "results")
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["campaign"] == "scaling"
    assert payload["num_trials"] == 6
    assert len(payload["replicates"]) == 2
    assert payload["shards"]
    for shard in payload["shards"]:
        assert shard["trials"]
        assert shard["elapsed_s"] >= 0.0


def test_spec_executor_validation():
    assert CampaignSpec(campaign="scaling").executor == "auto"
    for mode in ("auto", "thread", "process"):
        assert CampaignSpec(campaign="scaling", executor=mode).executor == mode
    with pytest.raises(ValueError, match="unknown executor"):
        CampaignSpec(campaign="scaling", executor="greenlet")


def test_load_spec_with_executor(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(
        json.dumps({"campaign": "scaling", "workers": 2, "executor": "thread"})
    )
    assert load_campaign_spec(path).executor == "thread"


def test_thread_campaign_matches_process_campaign():
    thread = run_campaign(
        CampaignSpec(campaign="scaling", scale="tiny", workers=2, executor="thread")
    )
    process = run_campaign(
        CampaignSpec(campaign="scaling", scale="tiny", workers=2, executor="process")
    )

    def stable(outcome):
        # Everything but each point's own wall clock is deterministic.
        return [
            {key: value for key, value in row.items() if key != "seconds"}
            for row in outcome.replicates[0].summary["rows"]
        ]

    assert stable(thread) == stable(process)


def test_outcome_json_records_executor(scaling_outcome, tmp_path):
    payload = json.loads(
        write_outcome(scaling_outcome, tmp_path / "results").read_text()
    )
    assert payload["executor"] == scaling_outcome.spec.executor


def test_validate_output_dir_creates_nested_path(tmp_path):
    target = tmp_path / "a" / "b" / "results"
    assert validate_output_dir(target) == target
    assert target.is_dir()
    # Idempotent on an existing directory.
    assert validate_output_dir(target) == target


def test_validate_output_dir_rejects_file(tmp_path):
    clobber = tmp_path / "occupied"
    clobber.write_text("{}")
    with pytest.raises(ValueError, match="not a directory"):
        validate_output_dir(clobber)
    # A parent that is a file blocks creation, too.
    with pytest.raises(ValueError, match="cannot create"):
        validate_output_dir(clobber / "nested")


def test_validate_output_dir_rejects_unwritable(tmp_path):
    if os.geteuid() == 0:
        pytest.skip("root bypasses permission bits")
    locked = tmp_path / "locked"
    locked.mkdir(mode=0o500)
    try:
        with pytest.raises(ValueError, match="not writable"):
            validate_output_dir(locked)
    finally:
        locked.chmod(0o700)
