"""Golden suite: pipeline-based fits are bit-identical to the pre-refactor
monolithic estimators.

The three frozen reference implementations below are verbatim copies of the
estimators' ``fit()`` bodies as they existed before the staged-pipeline
refactor (one monolithic method per algorithm, cold cache per fit). Every
pipeline fit must reproduce their models *and* reports exactly — same
estimate floats, same identifiability, same path-set selection, same cache
counters — on both the packed and the dense observation backends; and a fit
through a shared :class:`~repro.probability.pipeline.SharedFitWorkspace`
must equal the cold-cache fit bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.linalg.nullspace import DEFAULT_TOL, null_space, null_space_update
from repro.linalg.system import EquationSystem
from repro.model.status import ObservationMatrix
from repro.probability.base import (
    EstimatorConfig,
    FitReport,
    FrequencyCache,
    log_frequency_weights,
    shared_sampled_pool,
    singleton_path_sets,
)
from repro.probability.correlation_complete import (
    CorrelationCompleteEstimator,
    CorrelationCompleteNoRedundancy,
)
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.independence import IndependenceEstimator
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import SubsetIndex, potentially_congested_links
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.util.subsets import bounded_subsets


# ----------------------------------------------------------------------
# Frozen pre-refactor reference implementations
# ----------------------------------------------------------------------
def _attach(model, report):
    model.report = report
    return model


def legacy_independence_fit(config, network, observations, weighted=False):
    """The pre-refactor ``IndependenceEstimator.fit`` body."""
    config = EstimatorConfig(**{**config.__dict__})
    config.weighted = weighted
    active = sorted(
        potentially_congested_links(network, observations, config.pruning_tolerance)
    )
    always_good = frozenset(range(network.num_links)) - frozenset(active)
    frequency = FrequencyCache(observations)
    if not active:
        model = CongestionProbabilityModel(
            network, {}, {}, always_good_links=always_good, independent=True
        )
        return _attach(model, FitReport())

    path_sets = list(singleton_path_sets(observations))
    path_sets.extend(
        shared_sampled_pool(
            network,
            observations,
            count=config.pair_sample,
            max_size=config.path_set_max_size,
            seed=config.seed,
        )
    )
    frequencies = frequency.query_many(path_sets)
    incidence = network.incidence[:, active]
    coverage = np.zeros((len(path_sets), len(active)), dtype=bool)
    for i, path_set in enumerate(path_sets):
        coverage[i] = incidence[list(path_set)].any(axis=0)
    usable = (frequencies > config.min_frequency) & coverage.any(axis=1)
    if not usable.any():
        raise EstimationError("Independence: no usable path-set equations")
    rows = coverage[usable].astype(float)
    freqs = frequencies[usable]
    weights = (
        log_frequency_weights(freqs, frequency.num_intervals)
        if config.weighted
        else np.ones(len(freqs))
    )
    system = EquationSystem(len(active))
    system.add_batch(rows, np.log(freqs), weights)
    used = [frozenset(ps) for ps, keep in zip(path_sets, usable) if keep]
    solution = system.solve(upper_bound=0.0)
    good = np.exp(np.minimum(solution.values, 0.0))
    estimates, identifiable = {}, {}
    for i, link in enumerate(active):
        estimates[frozenset({link})] = float(good[i])
        identifiable[frozenset({link})] = bool(solution.identifiable[i])
    model = CongestionProbabilityModel(
        network, estimates, identifiable,
        always_good_links=always_good, independent=True,
    )
    report = FitReport(
        num_unknowns=len(active),
        num_equations=len(system),
        rank=solution.rank,
        num_identifiable=int(solution.identifiable.sum()),
        residual=solution.residual,
        path_sets=used,
        frequency_cache_hits=frequency.hits,
        frequency_cache_misses=frequency.misses,
    )
    return _attach(model, report)


def legacy_heuristic_fit(config, network, observations):
    """The pre-refactor ``CorrelationHeuristicEstimator.fit`` body."""
    config = EstimatorConfig(**{**config.__dict__})
    config.weighted = False
    active = potentially_congested_links(
        network, observations, config.pruning_tolerance
    )
    always_good = frozenset(range(network.num_links)) - active
    frequency = FrequencyCache(observations)
    if not active:
        model = CongestionProbabilityModel(
            network, {}, {}, always_good_links=always_good
        )
        return _attach(model, FitReport())

    pool = list(singleton_path_sets(observations))
    pool.extend(
        shared_sampled_pool(
            network,
            observations,
            count=config.pair_sample * 3,
            max_size=config.path_set_max_size + 2,
            seed=config.seed,
        )
    )
    active_sets = [
        frozenset(c & active) for c in network.correlation_sets if c & active
    ]
    for members in active_sets:
        for link in sorted(members):
            selector = network.paths_covering([link]) - network.paths_covering(
                members - {link}
            )
            if selector:
                pool.append(frozenset(selector))
    index = SubsetIndex.build(
        network, active, pool,
        requested_subset_size=1,
        hard_subset_cap=config.hard_subset_cap + 2,
    )
    deduped = list(dict.fromkeys(pool))
    frequencies = frequency.query_many(deduped)
    frequent = frequencies > config.min_frequency
    candidates = [s for s, keep in zip(deduped, frequent) if keep]
    rows, usable = index.rows_matrix(candidates)
    if rows.shape[0] == 0:
        raise EstimationError("Correlation-heuristic: no usable path-set equations")
    used = [s for s, keep in zip(candidates, usable) if keep]
    system = EquationSystem(len(index))
    system.add_batch(rows, np.log(frequencies[frequent][usable]))
    solution = system.solve(upper_bound=0.0)
    good = np.exp(np.minimum(solution.values, 0.0))
    estimates, identifiable = {}, {}
    for i, subset in enumerate(index.subsets):
        estimates[subset] = float(good[i])
        identifiable[subset] = bool(solution.identifiable[i]) and len(subset) == 1
    model = CongestionProbabilityModel(
        network, estimates, identifiable, always_good_links=always_good
    )
    report = FitReport(
        num_unknowns=len(index),
        num_equations=len(system),
        rank=solution.rank,
        num_identifiable=int(solution.identifiable.sum()),
        residual=solution.residual,
        path_sets=used,
        frequency_cache_hits=frequency.hits,
        frequency_cache_misses=frequency.misses,
    )
    return _attach(model, report)


class LegacyCorrelationComplete:
    """The pre-refactor ``CorrelationCompleteEstimator`` (monolithic fit)."""

    def __init__(self, config, redundancy=True):
        self.config = EstimatorConfig(**{**config.__dict__})
        self.redundancy = redundancy

    def fit(self, network, observations):
        active = potentially_congested_links(
            network, observations, self.config.pruning_tolerance
        )
        frequency = FrequencyCache(observations)
        always_good = frozenset(range(network.num_links)) - active
        if not active:
            model = CongestionProbabilityModel(
                network, {}, {}, always_good_links=always_good
            )
            return _attach(model, FitReport())
        index, pool = self._build_index(network, observations, active)
        path_sets = self._select_path_sets(index, frequency)
        if not path_sets:
            raise EstimationError("no usable path-set equations")
        extra = (
            self._redundant_path_sets(index, frequency, pool, path_sets)
            if self.redundancy
            else []
        )
        return self._solve(network, index, path_sets, extra, frequency, always_good)

    def _build_index(self, network, observations, active):
        candidates = list(singleton_path_sets(observations))
        candidates.extend(
            shared_sampled_pool(
                network,
                observations,
                count=self.config.pair_sample,
                max_size=self.config.path_set_max_size,
                seed=self.config.seed,
            )
        )
        active_sets = [
            frozenset(c & active) for c in network.correlation_sets if c & active
        ]
        for members in active_sets:
            for link in sorted(members):
                selector = network.paths_covering([link]) - network.paths_covering(
                    members - {link}
                )
                if selector:
                    candidates.append(frozenset(selector))
        index = SubsetIndex.build(
            network, active, candidates,
            requested_subset_size=self.config.requested_subset_size,
            hard_subset_cap=self.config.hard_subset_cap,
        )
        return index, candidates

    def _usable_row(self, index, frequency, path_set):
        if not path_set:
            return None
        row = index.row(path_set)
        if row is None or not row.any():
            return None
        if frequency(path_set) <= self.config.min_frequency:
            return None
        return row

    def _select_path_sets(self, index, frequency):
        chosen, rows, seen = [], [], set()
        selectors = [
            frozenset(index.paths_selector(subset)) for subset in index.subsets
        ]
        frequency.prefetch([s for s in selectors if s])
        for path_set in selectors:
            if path_set in seen:
                continue
            row = self._usable_row(index, frequency, path_set)
            if row is None:
                continue
            seen.add(path_set)
            chosen.append(path_set)
            rows.append(row)
        matrix = (np.vstack(rows) if rows else np.zeros((0, len(index))))
        basis = null_space(matrix)
        while basis.shape[1] > 0:
            added = self._add_rank_increasing_row(index, frequency, basis, seen, chosen)
            if added is None:
                break
            basis = null_space_update(basis, added)
        return chosen

    def _add_rank_increasing_row(self, index, frequency, basis, seen, chosen):
        weights = np.count_nonzero(np.abs(basis) > 1e-12, axis=1)
        order = np.argsort(-weights, kind="stable")
        for position in order:
            if weights[position] == 0:
                break
            subset = index.subsets[int(position)]
            base = sorted(index.paths_selector(subset))
            if not base:
                continue
            combos = [
                frozenset(combo)
                for combo in bounded_subsets(
                    base,
                    max_size=self.config.path_set_max_size,
                    max_count=self.config.path_set_max_count,
                )
            ]
            fresh = [c for c in combos if c not in seen]
            chunk = 16
            for start in range(0, len(fresh), chunk):
                block = fresh[start : start + chunk]
                frequencies = frequency.query_many(block)
                rows, usable = index.rows_matrix(block)
                if rows.shape[0] == 0:
                    continue
                gains = np.linalg.norm(rows @ basis, axis=1)
                candidate_ok = frequencies[usable] > self.config.min_frequency
                candidates = [c for c, keep in zip(block, usable) if keep]
                for candidate, ok, gain, row in zip(
                    candidates, candidate_ok, gains, rows
                ):
                    if not ok or gain <= DEFAULT_TOL:
                        continue
                    seen.add(candidate)
                    chosen.append(candidate)
                    return row
        return None

    def _redundant_path_sets(self, index, frequency, pool, selected):
        seen = set(selected)
        fresh = [
            path_set
            for path_set in dict.fromkeys(pool)
            if path_set and path_set not in seen
        ]
        if not fresh:
            return []
        frequencies = frequency.query_many(fresh)
        _, usable = index.rows_matrix(fresh)
        keep = usable & (frequencies > self.config.min_frequency)
        return [path_set for path_set, ok in zip(fresh, keep) if ok]

    def _add_prior_equations(self, system, index):
        if self.config.prior_weight <= 0.0:
            return
        for subset in index.subsets:
            if len(subset) < 2:
                continue
            singleton_positions = []
            for link in subset:
                singleton = frozenset({link})
                if singleton not in index:
                    break
                singleton_positions.append(index.position(singleton))
            else:
                if self.config.prior_mode == "independence":
                    row = np.zeros(len(index))
                    row[index.position(subset)] = 1.0
                    row[singleton_positions] -= 1.0
                    system.add(row, 0.0, self.config.prior_weight, prior=True)
                else:
                    for position in singleton_positions:
                        row = np.zeros(len(index))
                        row[index.position(subset)] = 1.0
                        row[position] -= 1.0
                        system.add(row, 0.0, self.config.prior_weight, prior=True)

    def _solve(self, network, index, path_sets, extra, frequency, always_good):
        all_sets = list(path_sets) + list(extra)
        rows, usable = index.rows_matrix(all_sets)
        if not usable.all():
            raise EstimationError("selected path set became unusable")
        freqs = frequency.query_many(all_sets)
        weights = (
            log_frequency_weights(freqs, frequency.num_intervals)
            if self.config.weighted
            else np.ones(len(all_sets))
        )
        system = EquationSystem(len(index))
        system.add_batch(rows, np.log(freqs), weights)
        self._add_prior_equations(system, index)
        solution = system.solve(upper_bound=0.0)
        good = np.exp(np.minimum(solution.values, 0.0))
        estimates, identifiable = {}, {}
        for position, subset in enumerate(index.subsets):
            estimates[subset] = float(good[position])
            identifiable[subset] = bool(solution.identifiable[position])
        model = CongestionProbabilityModel(
            network, estimates, identifiable, always_good_links=always_good
        )
        report = FitReport(
            num_unknowns=len(index),
            num_equations=len(system),
            rank=solution.rank,
            num_identifiable=int(solution.identifiable.sum()),
            residual=solution.residual,
            path_sets=list(path_sets),
            frequency_cache_hits=frequency.hits,
            frequency_cache_misses=frequency.misses,
        )
        return _attach(model, report)


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def assert_models_identical(actual, expected):
    """Bitwise model equality: estimates, flags, always-good set."""
    assert actual._good == expected._good  # exact float equality
    assert actual._identifiable == expected._identifiable
    assert actual.always_good_links == expected.always_good_links
    assert actual.independent == expected.independent
    assert np.array_equal(actual.link_marginals(), expected.link_marginals())


def assert_reports_identical(actual, expected):
    """Bitwise report equality on every pre-refactor field.

    ``stage_seconds`` is the pipeline's extension (wall-clock, never
    comparable) and is excluded.
    """
    assert actual.num_unknowns == expected.num_unknowns
    assert actual.num_equations == expected.num_equations
    assert actual.rank == expected.rank
    assert actual.num_identifiable == expected.num_identifiable
    assert actual.residual == expected.residual
    assert actual.path_sets == expected.path_sets
    assert actual.frequency_cache_hits == expected.frequency_cache_hits
    assert actual.frequency_cache_misses == expected.frequency_cache_misses


@pytest.fixture(scope="module")
def experiment(small_brite):
    """A noisy (non-oracle) run: realistic frequency-cache traffic."""
    scenario = build_scenario(
        small_brite, ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE), 11
    )
    return run_experiment(
        scenario, 400, prober=PathProber(num_packets=40), random_state=12
    )


@pytest.fixture(scope="module", params=["packed", "dense"])
def observations(request, experiment):
    if request.param == "packed":
        return experiment.observations
    return ObservationMatrix(experiment.observations.matrix, backend="dense")


CASES = [
    (
        "Independence",
        lambda cfg: IndependenceEstimator(cfg),
        lambda cfg, net, obs: legacy_independence_fit(cfg, net, obs),
    ),
    (
        "Correlation-heuristic",
        lambda cfg: CorrelationHeuristicEstimator(cfg),
        lambda cfg, net, obs: legacy_heuristic_fit(cfg, net, obs),
    ),
    (
        "Correlation-complete",
        lambda cfg: CorrelationCompleteEstimator(cfg),
        lambda cfg, net, obs: LegacyCorrelationComplete(cfg).fit(net, obs),
    ),
    (
        "Correlation-complete (no redundancy)",
        lambda cfg: CorrelationCompleteNoRedundancy(cfg),
        lambda cfg, net, obs: LegacyCorrelationComplete(
            cfg, redundancy=False
        ).fit(net, obs),
    ),
]


@pytest.mark.parametrize(
    "factory,legacy", [case[1:] for case in CASES], ids=[c[0] for c in CASES]
)
def test_pipeline_fit_matches_legacy(factory, legacy, small_brite, observations):
    config = EstimatorConfig(seed=3)
    expected = legacy(config, small_brite, observations)
    actual = factory(config).fit(small_brite, observations)
    assert_models_identical(actual, expected)
    assert_reports_identical(actual.report, expected.report)


@pytest.mark.parametrize(
    "factory,legacy", [case[1:] for case in CASES], ids=[c[0] for c in CASES]
)
def test_shared_workspace_fit_matches_legacy(
    factory, legacy, small_brite, observations
):
    """Warm shared-cache fits equal cold legacy fits on the model level.

    Cache hit/miss counters legitimately differ (that is the point of the
    workspace); everything that feeds the estimates must not.
    """
    config = EstimatorConfig(seed=3)
    expected = legacy(config, small_brite, observations)
    workspace = SharedFitWorkspace(observations)
    # Pre-warm with another estimator so the cache is genuinely shared.
    IndependenceEstimator(config).fit(small_brite, observations, workspace=workspace)
    actual = factory(config).fit(small_brite, observations, workspace=workspace)
    assert_models_identical(actual, expected)
    report, golden = actual.report, expected.report
    assert report.num_equations == golden.num_equations
    assert report.rank == golden.rank
    assert report.residual == golden.residual
    assert report.path_sets == golden.path_sets
    # The warm cache answered some queries the cold fit had to compute.
    assert report.frequency_cache_misses <= golden.frequency_cache_misses


def test_empty_active_short_circuit_matches_legacy(small_brite):
    """All-good observations: pruning leaves nothing and both paths agree."""
    matrix = np.zeros((64, small_brite.num_paths), dtype=bool)
    observations = ObservationMatrix(matrix)
    config = EstimatorConfig(seed=3)
    for factory, legacy in [case[1:] for case in CASES]:
        expected = legacy(config, small_brite, observations)
        actual = factory(config).fit(small_brite, observations)
        assert_models_identical(actual, expected)
        assert_reports_identical(actual.report, expected.report)
        assert actual.report.num_unknowns == 0
