"""Registry consistency: every consumer-facing estimator name resolves."""

from __future__ import annotations

import pytest

from repro.exceptions import EstimationError
from repro.probability.base import EstimatorConfig, ProbabilityEstimator
from repro.probability.registry import (
    ESTIMATORS,
    EstimatorEntry,
    estimator_names,
    get_estimator,
    make_estimator,
    paper_estimator_names,
    register_estimator,
    resolve_estimator,
)


def test_every_entry_constructs_and_names_match():
    """Every registered estimator is importable/constructible, and its
    canonical registry name equals the class's experiment-table label."""
    for name in estimator_names():
        entry = ESTIMATORS[name]
        estimator = entry.factory(None)
        assert isinstance(estimator, ProbabilityEstimator)
        assert estimator.name == name == entry.name
        assert entry.cost_multiplier > 0


def test_canonical_names_and_aliases_are_unique():
    names = estimator_names()
    assert len(names) == len(set(names))
    aliases = [alias for entry in ESTIMATORS.values() for alias in entry.aliases]
    assert len(aliases) == len(set(aliases))
    assert not set(aliases) & set(names)


def test_paper_order_matches_figure4_legend():
    assert paper_estimator_names() == (
        "Independence",
        "Correlation-heuristic",
        "Correlation-complete",
    )
    # The sweep drivers consume the registry order directly.
    from repro.experiments.figure4 import ESTIMATOR_ORDER as FIG4
    from repro.experiments.realworld import ESTIMATOR_ORDER as REALWORLD

    assert FIG4 == paper_estimator_names()
    assert REALWORLD == paper_estimator_names()


def test_cost_multiplier_metadata():
    """The probe-budget multiplier lives in the registry, not string matches."""
    assert get_estimator("Independence").cost_multiplier == 1.0
    assert get_estimator("Correlation-complete").cost_multiplier == 2.5
    assert get_estimator("Correlation-heuristic").cost_multiplier == 2.5


def test_alias_resolution():
    assert get_estimator("independence").name == "Independence"
    assert get_estimator("complete").name == "Correlation-complete"
    assert get_estimator("heuristic").name == "Correlation-heuristic"
    assert (
        get_estimator("no-redundancy").name
        == "Correlation-complete (no redundancy)"
    )


def test_unknown_name_lists_known_estimators():
    with pytest.raises(EstimationError, match="known estimators"):
        get_estimator("nope")


def test_make_estimator_threads_config():
    estimator = make_estimator("Correlation-complete", EstimatorConfig(seed=99))
    assert estimator.config.seed == 99
    # And the config is copied, never shared.
    config = EstimatorConfig(weighted=True)
    heuristic = make_estimator("Correlation-heuristic", config)
    assert heuristic.config.weighted is False
    assert config.weighted is True


def test_resolve_estimator_accepts_instance_name_and_none():
    instance = make_estimator("Independence")
    assert resolve_estimator(instance) is instance
    assert resolve_estimator("heuristic").name == "Correlation-heuristic"
    assert resolve_estimator(None).name == "Correlation-complete"


def test_double_registration_requires_replace():
    entry = ESTIMATORS["Independence"]
    with pytest.raises(EstimationError, match="already registered"):
        register_estimator(entry)
    register_estimator(entry, replace_existing=True)  # idempotent re-register
    assert get_estimator("Independence") is entry


def test_alias_collision_rejected():
    clash = EstimatorEntry(
        name="Clashing",
        factory=lambda config=None: make_estimator("Independence", config),
        description="clashes with an existing alias",
        aliases=("independence",),
    )
    with pytest.raises(EstimationError, match="already points at"):
        register_estimator(clash)
    assert "Clashing" not in ESTIMATORS
