"""The paper's worked examples (Sections 2, 3.1, 5.3) as executable tests.

These tests pin the reproduction to the text: Algorithm 1 on Fig. 1 Case 1
must produce the path sets of the Section 5.3 table and a full-rank system;
Case 2 must leave {e1,e4}/{e2,e3} unidentifiable; the noise-free estimates
must match the generating model exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.independence import IndependenceEstimator


def _fit(network, observations, **kwargs):
    config = EstimatorConfig(requested_subset_size=2, pruning_tolerance=0.0, **kwargs)
    estimator = CorrelationCompleteEstimator(config)
    return estimator.fit(network, observations)


def test_algorithm1_full_rank_case1(fig1_case1, fig1_observations):
    model = _fit(fig1_case1, fig1_observations)
    report = model.report
    # 5 unknowns: {e1},{e2},{e3},{e4},{e2,e3} — all identifiable (the text:
    # "the corresponding matrix has full column rank").
    assert report.num_unknowns == 5
    assert report.rank == 5
    assert report.num_identifiable == 5


def test_algorithm1_initial_path_sets_match_table(fig1_case1, fig1_observations):
    model = _fit(fig1_case1, fig1_observations)
    selected = set(model.report.path_sets)
    # The Section 5.3 table: {p1,p2}, {p1}, {p2,p3}, {p3}, {p1,p2,p3}.
    expected = {
        frozenset({0, 1}),
        frozenset({0}),
        frozenset({1, 2}),
        frozenset({2}),
        frozenset({0, 1, 2}),
    }
    assert expected <= selected


def test_estimates_match_generating_model(fig1_case1, fig1_model, fig1_observations):
    model = _fit(fig1_case1, fig1_model and fig1_observations)
    for link in range(4):
        assert model.link_congestion_probability(link) == pytest.approx(
            fig1_model.marginal(link), abs=0.03
        )
    assert model.prob_all_good([1, 2]) == pytest.approx(
        fig1_model.prob_all_good([1, 2]), abs=0.03
    )
    assert model.prob_all_congested([1, 2]) == pytest.approx(
        fig1_model.prob_all_congested([1, 2]), abs=0.03
    )


def test_case2_unidentifiable_pairs(fig1_case2, fig1_model):
    # Section 5.3: "in the example of Fig. 1, Case 2, it is impossible to
    # compute the probability that {e1, e4} are both good or ... {e2, e3}".
    from repro.simulation.probing import oracle_path_status

    states = fig1_model.sample(4000, np.random.default_rng(3))
    observations = oracle_path_status(fig1_case2, states)
    model = _fit(fig1_case2, observations)
    assert not model.is_identifiable([0, 3])
    assert not model.is_identifiable([1, 2])


def test_independence_mislearns_correlated_pair(
    fig1_case1, fig1_model, fig1_observations
):
    """Section 3.1: under perfect correlation of e2,e3 the Independence
    assumption computes P(e2 good, e3 good) incorrectly."""
    estimator = IndependenceEstimator(EstimatorConfig(pruning_tolerance=0.0))
    model = estimator.fit(fig1_case1, fig1_observations)
    truth = fig1_model.prob_all_good([1, 2])  # 0.7 (one shared driver)
    # The inconsistent system (singleton equations say 0.7 each, joint
    # equations say 0.7 total) forces a least-squares compromise: both the
    # joint product and the per-link marginals come out wrong.
    product = model.prob_all_good([1, 2])
    assert abs(product - truth) > 0.05
    per_link = model.prob_all_good([1])
    assert abs(per_link - fig1_model.prob_all_good([1])) > 0.05


def test_correlation_complete_report_diagnostics(fig1_case1, fig1_observations):
    model = _fit(fig1_case1, fig1_observations)
    report = model.report
    assert report.num_equations >= report.rank
    assert report.residual < 0.05
    assert len(report.path_sets) >= 5
