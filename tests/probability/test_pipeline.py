"""Unit tests of the staged pipeline, workspaces, and stage accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem, SystemWorkspace
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.independence import IndependenceEstimator
from repro.probability.pipeline import (
    STAGE_ORDER,
    EstimationPipeline,
    SharedFitWorkspace,
)
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario


@pytest.fixture(scope="module")
def experiment(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 1)
    return run_experiment(scenario, 300, random_state=2, oracle=True)


# ----------------------------------------------------------------------
# Stage accounting
# ----------------------------------------------------------------------
def test_every_stage_timed_on_a_full_fit(small_brite, experiment):
    model = CorrelationCompleteEstimator(EstimatorConfig(seed=3)).fit(
        small_brite, experiment.observations
    )
    assert tuple(model.report.stage_seconds) == STAGE_ORDER
    assert all(seconds >= 0.0 for seconds in model.report.stage_seconds.values())
    assert model.report.total_seconds == pytest.approx(
        sum(model.report.stage_seconds.values())
    )


def test_stage_names_exposed_per_estimator(small_brite):
    estimator = IndependenceEstimator()
    assert tuple(estimator.stage_names()) == STAGE_ORDER
    assert tuple(estimator.pipeline().stage_names) == STAGE_ORDER


def test_prune_short_circuits_on_all_good(small_brite):
    observations = ObservationMatrix(
        np.zeros((64, small_brite.num_paths), dtype=bool)
    )
    model = CorrelationCompleteEstimator().fit(small_brite, observations)
    # Only the prune stage ran; the fit never built a cache or a system.
    assert list(model.report.stage_seconds) == ["prune"]
    assert model.always_good_links == frozenset(range(small_brite.num_links))


def test_pipeline_rejects_degenerate_stage_lists():
    with pytest.raises(EstimationError):
        EstimationPipeline([])
    noop = lambda context: None  # noqa: E731
    with pytest.raises(EstimationError, match="duplicate"):
        EstimationPipeline([("prune", noop), ("prune", noop)])


# ----------------------------------------------------------------------
# SharedFitWorkspace
# ----------------------------------------------------------------------
def test_workspace_checkout_rejects_other_observations(experiment):
    workspace = SharedFitWorkspace(experiment.observations)
    other = ObservationMatrix(experiment.observations.matrix)
    with pytest.raises(EstimationError, match="different observation set"):
        workspace.checkout(other)


def test_workspace_counters_are_per_fit(small_brite, experiment):
    """Reports carry per-fit deltas, not the shared cache's totals."""
    workspace = SharedFitWorkspace(experiment.observations)
    config = EstimatorConfig(seed=3)
    first = CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations, workspace=workspace
    )
    second = CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations, workspace=workspace
    )
    # The identical rerun answers everything from the warm cache...
    assert second.report.frequency_cache_misses == 0
    # ...and its hit count reflects its own queries, not both fits'
    # (batches count duplicate missing keys per occurrence but duplicate
    # hits once, so the warm rerun can undercount by the few in-batch
    # duplicates — never overcount).
    total_queries = (
        first.report.frequency_cache_hits + first.report.frequency_cache_misses
    )
    assert 0 < second.report.frequency_cache_hits <= total_queries
    assert np.array_equal(first.link_marginals(), second.link_marginals())


def test_workspace_not_required_for_plain_fits(small_brite, experiment):
    cold = CorrelationCompleteEstimator(EstimatorConfig(seed=3)).fit(
        small_brite, experiment.observations
    )
    assert cold.report.frequency_cache_hits >= 0  # cold cache, own counters


# ----------------------------------------------------------------------
# SystemWorkspace (linalg arena)
# ----------------------------------------------------------------------
def _filled_system(workspace, num_unknowns=3, rows=5, offset=0.0):
    system = EquationSystem(num_unknowns, workspace=workspace)
    matrix = np.arange(rows * num_unknowns, dtype=float).reshape(rows, num_unknowns)
    system.add_batch(matrix + offset, np.arange(rows, dtype=float))
    return system, matrix + offset


def test_system_workspace_matches_block_storage():
    workspace = SystemWorkspace()
    arena_system, matrix = _filled_system(workspace)
    plain = EquationSystem(3)
    plain.add_batch(matrix, np.arange(5, dtype=float))
    assert np.array_equal(arena_system.matrix, plain.matrix)
    assert np.array_equal(arena_system.rhs, plain.rhs)
    assert np.array_equal(arena_system.weights, plain.weights)
    assert np.array_equal(arena_system.prior_mask, plain.prior_mask)
    a = arena_system.solve()
    b = plain.solve()
    assert np.array_equal(a.values, b.values)
    assert a.rank == b.rank


def test_system_workspace_grows_and_recycles():
    workspace = SystemWorkspace()
    big = EquationSystem(4, workspace=workspace)
    big.add_batch(np.ones((workspace.INITIAL_CAPACITY + 10, 4)), np.ones(266))
    assert big.matrix.shape == (266, 4)
    # Recycling: a new system resets the count but keeps the capacity.
    small = EquationSystem(4, workspace=workspace)
    small.add_batch(np.eye(4), np.zeros(4))
    assert small.matrix.shape == (4, 4)
    assert len(small) == 4


def test_stale_system_detects_recycled_workspace():
    workspace = SystemWorkspace()
    stale, _ = _filled_system(workspace)
    EquationSystem(3, workspace=workspace)  # recycles the arena
    with pytest.raises(EstimationError, match="recycled"):
        stale.matrix


def test_workspace_solves_match_blockwise_solves(small_brite, experiment):
    """A fit through a system arena equals the block-list fit bitwise."""
    config = EstimatorConfig(seed=3)
    cold = CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations
    )
    workspace = SharedFitWorkspace(experiment.observations)
    warm = CorrelationCompleteEstimator(config).fit(
        small_brite, experiment.observations, workspace=workspace
    )
    assert np.array_equal(cold.link_marginals(), warm.link_marginals())
    assert cold.report.rank == warm.report.rank
    assert cold.report.residual == warm.report.residual
