"""Tests for windowed probability computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import WindowedEstimator
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import oracle_path_status


@pytest.fixture
def shifting_truth():
    """e1 quiet then busy: 0.1 for 400 intervals, 0.7 for the next 400."""
    quiet = CongestionModel(4, [Driver(0.1, frozenset({0}))])
    busy = CongestionModel(4, [Driver(0.7, frozenset({0}))])
    return NonStationaryModel([(quiet, 400), (busy, 400)])


@pytest.fixture
def timeline(fig1_case1, shifting_truth):
    states = shifting_truth.sample(800, np.random.default_rng(4))
    observations = oracle_path_status(fig1_case1, states)
    estimator = CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0))
    windowed = WindowedEstimator(estimator, window=200)
    return windowed.fit(fig1_case1, observations)


def test_window_count_and_spans(timeline):
    assert len(timeline.windows) == 4
    assert timeline.window_spans() == [(0, 200), (200, 400), (400, 600), (600, 800)]


def test_link_series_tracks_level_shift(timeline):
    series = timeline.link_series(0)
    assert series.shape == (4,)
    # Quiet epochs first, busy epochs afterwards.
    assert series[0] == pytest.approx(0.1, abs=0.06)
    assert series[1] == pytest.approx(0.1, abs=0.06)
    assert series[2] == pytest.approx(0.7, abs=0.06)
    assert series[3] == pytest.approx(0.7, abs=0.06)


def test_change_point_detected(timeline):
    assert timeline.change_points(0, threshold=0.2) == [2]
    assert timeline.change_points(3, threshold=0.2) == []


def test_peer_series(timeline):
    # AS 0 contains only e1 in Case 1.
    series = timeline.peer_series(0)
    assert series[2] > series[0]
    with pytest.raises(EstimationError):
        timeline.peer_series(99)


def test_set_series(timeline):
    series = timeline.set_series([0])
    assert series.shape == (4,)


def test_stride_overlapping_windows(fig1_case1, shifting_truth):
    states = shifting_truth.sample(600, np.random.default_rng(5))
    observations = oracle_path_status(fig1_case1, states)
    windowed = WindowedEstimator(
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=200,
        stride=100,
    )
    timeline = windowed.fit(fig1_case1, observations)
    assert len(timeline.windows) == 5
    assert timeline.window_spans()[1] == (100, 300)


def test_horizon_shorter_than_window(fig1_case1):
    observations = ObservationMatrix(np.zeros((50, 3), dtype=bool))
    windowed = WindowedEstimator(window=200)
    with pytest.raises(EstimationError):
        windowed.fit(fig1_case1, observations)


def test_validation():
    with pytest.raises(EstimationError):
        WindowedEstimator(window=1)
    with pytest.raises(EstimationError):
        WindowedEstimator(window=10, stride=0)


def test_unusable_windows_skipped(fig1_case1):
    # First half all congested (unusable), second half all good (usable but
    # empty model), third chunk mixed.
    blocks = [
        np.ones((100, 3), dtype=bool),
        np.zeros((100, 3), dtype=bool),
    ]
    observations = ObservationMatrix(np.vstack(blocks))
    windowed = WindowedEstimator(
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=100,
    )
    timeline = windowed.fit(fig1_case1, observations)
    assert timeline.window_spans() == [(100, 200)]
