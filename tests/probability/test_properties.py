"""Hypothesis property tests on the estimation core.

Invariants checked:

* Eq. 1 consistency: for any driver model and path set, the analytic
  all-good probability of the covered links factorises across correlation
  sets exactly (the identity the whole method rests on);
* inclusion–exclusion round-trips between all-good and all-congested set
  probabilities;
* the Correlation-complete estimator recovers identifiable quantities from
  analytic (infinite-sample) inputs exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.probing import oracle_path_status
from repro.topology.builders import fig1_topology

NETWORK = fig1_topology(1)


@st.composite
def driver_models(draw):
    """Random driver models over the Fig. 1 links."""
    num_drivers = draw(st.integers(1, 4))
    drivers = []
    for _ in range(num_drivers):
        probability = draw(st.floats(0.05, 0.9, allow_nan=False, allow_infinity=False))
        links = draw(st.sets(st.integers(0, 3), min_size=1, max_size=3).map(frozenset))
        drivers.append(Driver(probability=probability, links=links))
    return CongestionModel(4, drivers)


@settings(max_examples=60, deadline=None)
@given(model=driver_models(), path_set=st.sets(st.integers(0, 2), min_size=1))
def test_eq1_factorises_across_correlation_sets(model, path_set):
    """P(all links of Links(P) good) = prod over correlation sets of the
    per-set joint — exact for driver models only when no driver crosses a
    correlation-set boundary, and a (<=) bound otherwise."""
    links = NETWORK.links_covered(path_set)
    joint = model.prob_all_good(links)
    product = 1.0
    for members in NETWORK.correlation_sets:
        part = frozenset(members) & links
        if part:
            product *= model.prob_all_good(part)
    crosses = any(
        len({tuple(sorted(frozenset(c) & d.links)) for c in NETWORK.correlation_sets if frozenset(c) & d.links}) > 1
        for d in model.drivers
    )
    if crosses:
        # Cross-set drivers induce positive dependence: joint >= product.
        assert joint >= product - 1e-12
    else:
        assert joint == pytest.approx(product)


@settings(max_examples=60, deadline=None)
@given(model=driver_models(), links=st.sets(st.integers(0, 3), min_size=1, max_size=3))
def test_inclusion_exclusion_bounds(model, links):
    congested = model.prob_all_congested(links)
    good = model.prob_all_good(links)
    assert 0.0 <= congested <= 1.0
    assert 0.0 <= good <= 1.0
    if len(links) == 1:
        assert congested == pytest.approx(1.0 - good)


@settings(max_examples=60, deadline=None)
@given(model=driver_models())
def test_monotonicity_of_all_good(model):
    """P(all of S good) is non-increasing in S."""
    for subset, superset in [([0], [0, 1]), ([1], [1, 2]), ([0, 2], [0, 2, 3])]:
        assert (model.prob_all_good(superset) <= model.prob_all_good(subset) + 1e-12)


@settings(max_examples=25, deadline=None)
@given(model=driver_models())
def test_sampled_frequencies_match_analytic(model):
    states = model.sample(6000, np.random.default_rng(0))
    for links in ([0], [1, 2], [0, 1, 2, 3]):
        analytic = model.prob_all_good(links)
        empirical = float((~states[:, links]).all(axis=1).mean())
        assert empirical == pytest.approx(analytic, abs=0.05)


@settings(max_examples=25, deadline=None)
@given(model=driver_models())
def test_oracle_path_frequencies_match_analytic(model):
    states = model.sample(6000, np.random.default_rng(1))
    observations = oracle_path_status(NETWORK, states)
    for path_set in ([0], [0, 1], [0, 1, 2]):
        links = NETWORK.links_covered(path_set)
        analytic = model.prob_all_good(links)
        empirical = observations.all_good_frequency(path_set)
        assert empirical == pytest.approx(analytic, abs=0.05)
