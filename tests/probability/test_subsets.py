"""Tests for correlation subsets, potential congestion, and Row/Matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.rows import build_matrix, build_row
from repro.probability.subsets import SubsetIndex, potentially_congested_links


def _full_index(network, active=None):
    active = active if active is not None else frozenset(range(network.num_links))
    # Admit everything (toy scale): request subsets up to the largest set.
    return SubsetIndex.build(
        network,
        active,
        candidate_path_sets=[],
        requested_subset_size=4,
    )


def test_potentially_congested_all_when_nothing_good(fig1_case1):
    obs = ObservationMatrix(np.ones((5, 3), dtype=bool))
    assert potentially_congested_links(fig1_case1, obs) == frozenset({0, 1, 2, 3})


def test_potentially_congested_prunes_good_path(fig1_case1):
    # p3 always good -> e3, e4 surely good (the paper's Section 5.2 example:
    # "suppose path p3 is always good ... the potentially congested
    # correlation subsets are {e1} and {e2}").
    matrix = np.zeros((6, 3), dtype=bool)
    matrix[:, 0] = [1, 0, 1, 0, 1, 0]
    matrix[:, 1] = [0, 1, 1, 0, 0, 1]
    obs = ObservationMatrix(matrix)
    assert potentially_congested_links(fig1_case1, obs) == frozenset({0, 1})


def test_index_case1_subsets(fig1_case1):
    index = _full_index(fig1_case1)
    expected = {
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({3}),
        frozenset({1, 2}),
    }
    assert set(index.subsets) == expected


def test_index_case2_subsets(fig1_case2):
    index = _full_index(fig1_case2)
    expected = {
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({3}),
        frozenset({1, 2}),
        frozenset({0, 3}),
    }
    assert set(index.subsets) == expected


def test_complement_matches_paper(fig1_case1):
    # Section 5.2: complement({e2}) = {e3}, complement({e2, e3}) = {}.
    index = _full_index(fig1_case1)
    assert index.complement(frozenset({1})) == frozenset({2})
    assert index.complement(frozenset({2})) == frozenset({1})
    assert index.complement(frozenset({1, 2})) == frozenset()
    assert index.complement(frozenset({0})) == frozenset()


def test_paths_selector_matches_paper_table(fig1_case1):
    # The table in Section 5.3: selectors for the ordering
    # <{e1},{e2},{e3},{e4},{e2,e3}>.
    index = _full_index(fig1_case1)
    assert index.paths_selector(frozenset({0})) == frozenset({0, 1})
    assert index.paths_selector(frozenset({1})) == frozenset({0})
    assert index.paths_selector(frozenset({2})) == frozenset({1, 2})
    assert index.paths_selector(frozenset({3})) == frozenset({2})
    assert index.paths_selector(frozenset({1, 2})) == frozenset({0, 1, 2})


def test_row_matches_paper_matrix(fig1_case1):
    # Section 5.2's example matrix for P^ = <{p1}, {p1, p2}> over
    # E^ = <{e1},{e2},{e3},{e4},{e2,e3}>.
    network = fig1_case1
    active = frozenset(range(4))
    ordering = [
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
        frozenset({3}),
        frozenset({1, 2}),
    ]
    index = SubsetIndex(network, active, ordering)
    matrix = build_matrix([[0], [0, 1]], index)
    expected = np.array(
        [
            [1, 1, 0, 0, 0],
            [1, 0, 0, 0, 1],
        ],
        dtype=float,
    )
    assert np.array_equal(matrix, expected)


def test_row_unusable_outside_index(fig1_case1):
    # Index admitting only singletons: {p1, p2} needs the pair {e2, e3}.
    active = frozenset(range(4))
    ordering = [frozenset({i}) for i in range(4)]
    index = SubsetIndex(fig1_case1, active, ordering)
    assert index.row([0, 1]) is None
    with pytest.raises(EstimationError):
        build_row([0, 1], index)


def test_decompose_ignores_always_good_links(fig1_case1):
    # With e2 inactive, path p1 = (e1, e2) decomposes to {e1} only.
    active = frozenset({0, 2, 3})
    index = SubsetIndex.build(
        fig1_case1, active, candidate_path_sets=[], requested_subset_size=2
    )
    row = index.row([0])
    assert row is not None
    assert row[index.position(frozenset({0}))] == 1.0
    assert row.sum() == 1.0


def test_duplicate_subsets_rejected(fig1_case1):
    with pytest.raises(EstimationError):
        SubsetIndex(
            fig1_case1,
            frozenset(range(4)),
            [frozenset({0}), frozenset({0})],
        )


def test_cross_set_subset_rejected(fig1_case1):
    with pytest.raises(EstimationError):
        SubsetIndex(fig1_case1, frozenset(range(4)), [frozenset({0, 1})])


def test_position_lookup(fig1_case1):
    index = _full_index(fig1_case1)
    for i, subset in enumerate(index.subsets):
        assert index.position(subset) == i
    with pytest.raises(EstimationError):
        index.position(frozenset({0, 1}))


def test_hard_cap_limits_discovered_subsets(fig1_case1):
    active = frozenset(range(4))
    index = SubsetIndex.build(
        fig1_case1,
        active,
        candidate_path_sets=[frozenset({0, 1, 2})],
        requested_subset_size=1,
        hard_subset_cap=1,
    )
    # The pair {e2, e3} exceeds the cap, so only singletons are admitted.
    assert all(len(subset) == 1 for subset in index.subsets)
