"""Estimator behaviour on generated topologies (integration-level)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.metrics.probability import evaluate_estimator
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.independence import IndependenceEstimator
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario

ALL_ESTIMATORS = [
    CorrelationCompleteEstimator,
    IndependenceEstimator,
    CorrelationHeuristicEstimator,
]


@pytest.fixture(scope="module")
def brite_experiment(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 1)
    return run_experiment(scenario, 500, random_state=2, oracle=True)


@pytest.mark.parametrize("estimator_cls", ALL_ESTIMATORS)
def test_estimators_produce_valid_probabilities(estimator_cls, small_brite, brite_experiment):
    estimator = estimator_cls(EstimatorConfig(seed=3))
    model = estimator.fit(small_brite, brite_experiment.observations)
    marginals = model.link_marginals()
    assert marginals.shape == (small_brite.num_links,)
    assert (marginals >= 0.0).all()
    assert (marginals <= 1.0).all()


@pytest.mark.parametrize("estimator_cls", ALL_ESTIMATORS)
def test_estimators_reasonably_accurate_oracle(estimator_cls, brite_experiment):
    estimator = estimator_cls(EstimatorConfig(seed=3))
    metrics = evaluate_estimator(estimator, brite_experiment)
    assert metrics.mean_absolute_error < 0.15


def test_correlation_complete_accurate_on_identifiable(brite_experiment, small_brite):
    estimator = CorrelationCompleteEstimator(EstimatorConfig(seed=3))
    model = estimator.fit(small_brite, brite_experiment.observations)
    truth = brite_experiment.ground_truth
    errors = [
        abs(model.link_congestion_probability(e) - truth.marginal(e))
        for e in range(small_brite.num_links)
        if model.is_identifiable([e])
    ]
    assert errors, "no identifiable links at all?"
    # Identifiable links are estimated to sampling accuracy (T = 500).
    assert float(np.mean(errors)) < 0.05


def test_always_congested_paths_rejected():
    # Every path congested in every interval: no usable equation.
    from repro.topology.builders import fig1_topology

    network = fig1_topology(1)
    observations = ObservationMatrix(np.ones((50, 3), dtype=bool))
    with pytest.raises(EstimationError):
        CorrelationCompleteEstimator(
            EstimatorConfig(pruning_tolerance=0.0)
        ).fit(network, observations)
    with pytest.raises(EstimationError):
        IndependenceEstimator(EstimatorConfig(pruning_tolerance=0.0)).fit(
            network, observations
        )


def test_all_good_observations_yield_empty_model():
    from repro.topology.builders import fig1_topology

    network = fig1_topology(1)
    observations = ObservationMatrix(np.zeros((50, 3), dtype=bool))
    model = CorrelationCompleteEstimator().fit(network, observations)
    assert model.link_marginals().tolist() == [0.0] * 4
    assert model.always_good_links == frozenset({0, 1, 2, 3})


def test_config_validation():
    with pytest.raises(EstimationError):
        EstimatorConfig(requested_subset_size=0).validate()
    with pytest.raises(EstimationError):
        EstimatorConfig(hard_subset_cap=1, requested_subset_size=2).validate()
    with pytest.raises(EstimationError):
        EstimatorConfig(min_frequency=1.0).validate()
    with pytest.raises(EstimationError):
        EstimatorConfig(prior_mode="bogus").validate()
    with pytest.raises(EstimationError):
        EstimatorConfig(pruning_tolerance=-0.1).validate()


def test_config_not_shared_between_estimators():
    config = EstimatorConfig(weighted=True)
    heuristic = CorrelationHeuristicEstimator(config)
    complete = CorrelationCompleteEstimator(config)
    assert heuristic.config.weighted is False
    assert complete.config.weighted is True
    assert config.weighted is True


def test_heuristic_uses_more_equations_than_complete(small_brite, brite_experiment):
    config = EstimatorConfig(seed=3)
    complete = CorrelationCompleteEstimator(config).fit(
        small_brite, brite_experiment.observations
    )
    heuristic = CorrelationHeuristicEstimator(config).fit(
        small_brite, brite_experiment.observations
    )
    # The paper: the heuristic "creates a significantly larger number of
    # equations than ours".
    assert heuristic.report.num_equations > complete.report.rank


def test_requested_subset_size_controls_unknowns(small_brite, brite_experiment):
    small = CorrelationCompleteEstimator(
        EstimatorConfig(requested_subset_size=1, seed=3)
    ).fit(small_brite, brite_experiment.observations)
    large = CorrelationCompleteEstimator(
        EstimatorConfig(requested_subset_size=3, seed=3)
    ).fit(small_brite, brite_experiment.observations)
    assert large.report.num_unknowns >= small.report.num_unknowns


def test_estimator_determinism(small_brite, brite_experiment):
    a = CorrelationCompleteEstimator(EstimatorConfig(seed=5)).fit(
        small_brite, brite_experiment.observations
    )
    b = CorrelationCompleteEstimator(EstimatorConfig(seed=5)).fit(
        small_brite, brite_experiment.observations
    )
    assert np.allclose(a.link_marginals(), b.link_marginals())
