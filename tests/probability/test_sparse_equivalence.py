"""Estimator-level sparse-vs-dense equivalence.

``EstimatorConfig.sparse`` flips the equation system into entry-run
storage; every estimator must produce the *same* model — exact estimate
floats, identifiability flags, rank, residual, selected path sets — as
the dense configuration, on cold fits and through a shared workspace.
This is the contract the scaling-topology campaign's digests enforce
end-to-end; here it is pinned per estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.probability.base import EstimatorConfig
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import make_estimator
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario

ESTIMATORS = [
    "Independence",
    "Correlation-heuristic",
    "Correlation-complete",
    "Correlation-complete (no redundancy)",
]


@pytest.fixture(scope="module")
def experiment(small_brite):
    scenario = build_scenario(
        small_brite, ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE), 11
    )
    return run_experiment(
        scenario, 400, prober=PathProber(num_packets=40), random_state=12
    )


def _assert_fits_identical(dense, sparse):
    assert dense._good == sparse._good  # exact float equality
    assert dense._identifiable == sparse._identifiable
    assert dense.always_good_links == sparse.always_good_links
    dense_report, sparse_report = dense.report, sparse.report
    assert dense_report.num_unknowns == sparse_report.num_unknowns
    assert dense_report.num_equations == sparse_report.num_equations
    assert dense_report.rank == sparse_report.rank
    assert dense_report.num_identifiable == sparse_report.num_identifiable
    assert dense_report.residual == sparse_report.residual
    assert dense_report.path_sets == sparse_report.path_sets
    assert np.array_equal(dense.link_marginals(), sparse.link_marginals())


@pytest.mark.parametrize("name", ESTIMATORS)
@pytest.mark.parametrize("subset_size", [1, 2])
def test_sparse_flag_is_bit_identical(name, subset_size, small_brite, experiment):
    """Dense and sparse fits agree, eagerly and with lazy admission."""
    observations = experiment.observations
    dense = make_estimator(
        name, EstimatorConfig(requested_subset_size=subset_size, seed=3)
    ).fit(small_brite, observations)
    sparse = make_estimator(
        name,
        EstimatorConfig(requested_subset_size=subset_size, sparse=True, seed=3),
    ).fit(small_brite, observations)
    _assert_fits_identical(dense, sparse)
    # The storage switch is the only difference: sparse rows must be
    # strictly lighter than the dense equations x unknowns matrix.
    if sparse.report.num_equations:
        assert (
            sparse.report.equation_storage_bytes
            < dense.report.equation_storage_bytes
        )


@pytest.mark.parametrize("name", ESTIMATORS)
def test_sparse_through_shared_workspace(name, small_brite, experiment):
    """One workspace alternating dense and sparse fits never cross-talks."""
    observations = experiment.observations
    workspace = SharedFitWorkspace(observations)
    dense = make_estimator(name, EstimatorConfig(seed=3)).fit(
        small_brite, observations, workspace=workspace
    )
    sparse = make_estimator(name, EstimatorConfig(sparse=True, seed=3)).fit(
        small_brite, observations, workspace=workspace
    )
    _assert_fits_identical(dense, sparse)
