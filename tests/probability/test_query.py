"""Tests for the queryable probability model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IdentifiabilityError
from repro.probability.query import CongestionProbabilityModel


@pytest.fixture
def model_case1(fig1_case1):
    # Ground truth: e1 p=0.2, e2=e3 perfectly correlated p=0.3, e4 good.
    estimates = {
        frozenset({0}): 0.8,
        frozenset({1}): 0.7,
        frozenset({2}): 0.7,
        frozenset({1, 2}): 0.7,
    }
    identifiable = {subset: True for subset in estimates}
    return CongestionProbabilityModel(
        fig1_case1,
        estimates,
        identifiable,
        always_good_links=frozenset({3}),
    )


def test_link_probabilities(model_case1):
    assert model_case1.link_congestion_probability(0) == pytest.approx(0.2)
    assert model_case1.link_congestion_probability(1) == pytest.approx(0.3)
    assert model_case1.link_congestion_probability(3) == 0.0


def test_link_marginals_vector(model_case1):
    marginals = model_case1.link_marginals()
    assert marginals.shape == (4,)
    assert marginals[3] == 0.0


def test_prob_all_good_uses_joint(model_case1):
    # Correlated pair: joint 0.7, not 0.49.
    assert model_case1.prob_all_good([1, 2]) == pytest.approx(0.7)


def test_prob_all_good_factorises_across_sets(model_case1):
    assert model_case1.prob_all_good([0, 1, 2]) == pytest.approx(0.8 * 0.7)


def test_prob_all_good_empty_and_always_good(model_case1):
    assert model_case1.prob_all_good([]) == 1.0
    assert model_case1.prob_all_good([3]) == 1.0
    assert model_case1.prob_all_good([3, 0]) == pytest.approx(0.8)


def test_prob_all_congested_perfectly_correlated(model_case1):
    # P(e2, e3 congested) = 1 - 0.7 - 0.7 + 0.7 = 0.3.
    assert model_case1.prob_all_congested([1, 2]) == pytest.approx(0.3)


def test_prob_all_congested_with_always_good(model_case1):
    assert model_case1.prob_all_congested([1, 3]) == 0.0


def test_assignment_log_prob(model_case1):
    # P(e1 congested, e2 good, e3 good) = 0.2 * 0.7.
    value = model_case1.assignment_log_prob([0], [1, 2])
    assert value == pytest.approx(np.log(0.2 * 0.7))


def test_assignment_log_prob_impossible(model_case1):
    assert model_case1.assignment_log_prob([3], []) == -np.inf


def test_assignment_rejects_overlap(model_case1):
    with pytest.raises(ValueError):
        model_case1.assignment_log_prob([1], [1])


def test_strict_unidentifiable_raises(fig1_case1):
    model = CongestionProbabilityModel(
        fig1_case1,
        {frozenset({1}): 0.7, frozenset({2}): 0.7, frozenset({1, 2}): 0.49},
        {frozenset({1}): True, frozenset({2}): True, frozenset({1, 2}): False},
    )
    with pytest.raises(IdentifiabilityError):
        model.prob_all_good([1, 2], strict=True)
    assert not model.is_identifiable([1, 2])


def test_missing_joint_falls_back_to_product(fig1_case1):
    model = CongestionProbabilityModel(
        fig1_case1,
        {frozenset({1}): 0.8, frozenset({2}): 0.5},
        {frozenset({1}): True, frozenset({2}): True},
    )
    assert model.prob_all_good([1, 2]) == pytest.approx(0.4)
    assert not model.is_identifiable([1, 2])


def test_independent_model_factorises(fig1_case1):
    model = CongestionProbabilityModel(
        fig1_case1,
        {frozenset({1}): 0.8, frozenset({2}): 0.5},
        {frozenset({1}): True, frozenset({2}): True},
        independent=True,
    )
    assert model.prob_all_good([1, 2]) == pytest.approx(0.4)
    assert model.is_identifiable([1, 2])


def test_probability_clipping(fig1_case1):
    model = CongestionProbabilityModel(
        fig1_case1, {frozenset({0}): 1.7, frozenset({1}): -0.2}
    )
    assert model.prob_all_good([0]) == 1.0
    assert model.prob_all_good([1]) > 0.0
