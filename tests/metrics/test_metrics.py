"""Tests for the Boolean and probability metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.boolean import (
    BooleanMetrics,
    detection_rate,
    false_positive_rate,
    summarize,
)
from repro.metrics.probability import (
    absolute_errors,
    error_cdf,
    subset_absolute_errors,
)
from repro.metrics.reporting import format_table
from repro.probability.query import CongestionProbabilityModel
from repro.simulation.congestion import CongestionModel, Driver
from repro.topology.builders import fig1_topology


def test_detection_rate():
    assert detection_rate(frozenset({1, 2}), frozenset({1})) == 0.5
    assert detection_rate(frozenset({1}), frozenset({1, 9})) == 1.0
    assert detection_rate(frozenset(), frozenset({1})) is None


def test_false_positive_rate():
    assert false_positive_rate(frozenset({1}), frozenset({1, 2})) == 0.5
    assert false_positive_rate(frozenset({1}), frozenset({1})) == 0.0
    assert false_positive_rate(frozenset({1}), frozenset()) is None


def test_summarize_averages_over_defined_intervals():
    actual = [frozenset({1}), frozenset(), frozenset({2})]
    inferred = [frozenset({1}), frozenset(), frozenset({3})]
    metrics = summarize("x", actual, inferred)
    assert metrics.detection_rate == pytest.approx(0.5)
    assert metrics.false_positive_rate == pytest.approx(0.5)
    assert metrics.intervals_scored == 2


def test_summarize_length_mismatch():
    with pytest.raises(ValueError):
        summarize("x", [frozenset()], [])


def test_boolean_metrics_str():
    metrics = BooleanMetrics("Sparsity", 0.9, 0.1, 100)
    assert "Sparsity" in str(metrics)


def test_absolute_errors():
    network = fig1_topology(1)
    truth = CongestionModel(4, [Driver(0.4, frozenset({0}))])
    model = CongestionProbabilityModel(
        network, {frozenset({0}): 0.7}, {frozenset({0}): True}
    )
    errors = absolute_errors(model, truth, [0])
    assert errors[0] == pytest.approx(abs(0.3 - 0.4))


def test_subset_absolute_errors():
    network = fig1_topology(1)
    truth = CongestionModel(4, [Driver(0.4, frozenset({1, 2}))])
    model = CongestionProbabilityModel(
        network,
        {
            frozenset({1}): 0.6,
            frozenset({2}): 0.6,
            frozenset({1, 2}): 0.6,
        },
        {
            frozenset({1}): True,
            frozenset({2}): True,
            frozenset({1, 2}): True,
        },
    )
    errors = subset_absolute_errors(model, truth, [frozenset({1, 2})])
    assert errors[0] == pytest.approx(0.0, abs=1e-9)


def test_error_cdf_shape():
    grid, cdf = error_cdf(np.array([0.05, 0.15, 0.5]), points=11)
    assert grid.shape == cdf.shape == (11,)
    assert cdf[0] == 0.0
    assert cdf[-1] == 1.0
    assert (np.diff(cdf) >= 0).all()


def test_error_cdf_empty():
    grid, cdf = error_cdf(np.array([]))
    assert (cdf == 1.0).all()


def test_format_table():
    text = format_table(["a", "b"], [["x", 0.12345], ["yy", 1.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "0.123" in text
    assert lines[1].startswith("-")
