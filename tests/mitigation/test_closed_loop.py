"""Closed-loop evaluation tests (repro.mitigation.evaluate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mitigation import get_policy, run_closed_loop
from repro.mitigation.evaluate import path_congestion_rate
from repro.probability.base import EstimatorConfig
from repro.probability.registry import make_estimator
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.scenarios import Scenario
from tests.mitigation.test_policies import model_for


@pytest.fixture
def diamond_scenario(diamond):
    """Diamond with only the upper branch's first link congestable."""
    truth = CongestionModel(
        diamond.num_links, [Driver(probability=0.5, links=frozenset({0}))]
    )
    return Scenario(
        name="diamond-upper",
        network=diamond,
        ground_truth=truth,
        congestable=frozenset({0}),
    )


def estimator(seed=0):
    return make_estimator("Independence", EstimatorConfig(seed=seed))


def test_path_congestion_rate(diamond):
    states = np.array(
        [
            [True, False, False, False],  # congests path 0 only
            [False, False, False, False],  # congests nothing
        ]
    )
    assert path_congestion_rate(diamond, states) == pytest.approx(0.25)


def test_noop_reproduces_pre_state_exactly(diamond_scenario):
    report = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("noop"),
        num_intervals=200,
        seed=42,
    )
    assert report.post_congestion_rate == report.pre_congestion_rate
    assert report.reduction == 0.0
    assert report.paths_disturbed == 0
    assert report.post_fit_error == report.pre_fit_error
    assert report.false_mitigation_rate == 0.0


def test_corropt_clears_congestion_on_diamond(diamond_scenario):
    report = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("corropt-greedy"),
        num_intervals=200,
        seed=42,
    )
    # The loop learns link 0 is congested and steers path 0 onto the
    # clean lower branch: the true residual drops to zero.
    assert report.pre_congestion_rate > 0.1
    assert report.post_congestion_rate == 0.0
    assert report.reduction == report.pre_congestion_rate
    assert report.paths_disturbed == 1
    assert report.num_target_links == 1
    assert report.false_mitigation_rate == 0.0
    assert report.plan["target_links"] == [0]


def test_closed_loop_is_deterministic(diamond_scenario):
    first = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("corropt-greedy"),
        num_intervals=200,
        seed=42,
    )
    second = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("corropt-greedy"),
        num_intervals=200,
        seed=42,
    )
    assert first == second


def test_false_mitigation_detected(diamond, diamond_scenario):
    # Inject a model that blames the (truly never congested) lower
    # branch: the loop must flag every such target as a false mitigation.
    wrong = model_for(diamond, {2: 0.9})
    report = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("corropt-greedy"),
        num_intervals=200,
        seed=42,
        pre_model=wrong,
    )
    assert report.num_target_links == 1
    assert report.plan["target_links"] == [2]
    assert report.false_mitigation_rate == 1.0


def test_report_json_round_trip_shape(diamond_scenario):
    report = run_closed_loop(
        diamond_scenario,
        estimator(),
        get_policy("ecmp-split"),
        num_intervals=100,
        seed=7,
    )
    raw = report.to_json_dict()
    assert raw["scenario"] == "diamond-upper"
    assert raw["policy"] == "ecmp-split"
    assert raw["estimator"] == "Independence"
    assert raw["num_paths"] == 2
    assert set(raw["plan"]) == {
        "policy",
        "target_links",
        "paths_disturbed",
        "changes",
        "metadata",
    }
