"""Unit tests for the mitigation-policy registry and the shipped policies."""

from __future__ import annotations

import pytest

from repro.exceptions import MitigationError
from repro.mitigation.policies import (
    POLICIES,
    MitigationPolicy,
    get_policy,
    policy_names,
    register_policy,
)
from repro.probability.query import CongestionProbabilityModel


def model_for(network, congestion, independent=True, always_good=frozenset()):
    """Hand-built fitted model: per-link congestion probabilities."""
    return CongestionProbabilityModel(
        network,
        {
            frozenset({e}): 1.0 - probability
            for e, probability in congestion.items()
        },
        identifiable={frozenset({e}): True for e in congestion},
        always_good_links=frozenset(always_good),
        independent=independent,
    )


# ----------------------------------------------------------------------
# registry


def test_registry_order_and_lookup():
    assert policy_names() == ["noop", "ecmp-split", "corropt-greedy"]
    assert get_policy("ecmp-split").name == "ecmp-split"


def test_unknown_policy_lists_known_names():
    with pytest.raises(MitigationError, match="noop.*ecmp-split.*corropt-greedy"):
        get_policy("turn-it-off-and-on")


def test_duplicate_registration_rejected():
    with pytest.raises(MitigationError, match="already registered"):
        register_policy(POLICIES["noop"])


def test_unknown_parameter_rejected(diamond):
    model = model_for(diamond, {0: 0.5})
    with pytest.raises(MitigationError, match="max_linkz"):
        get_policy("corropt-greedy").propose(diamond, model, max_linkz=2)


def test_propose_records_params_in_metadata(diamond):
    model = model_for(diamond, {0: 0.5})
    plan = get_policy("corropt-greedy").propose(diamond, model, max_links=2)
    assert plan.metadata["params"]["max_links"] == 2


# ----------------------------------------------------------------------
# noop


def test_noop_always_empty(diamond):
    model = model_for(diamond, {0: 0.99, 1: 0.99})
    plan = get_policy("noop").propose(diamond, model)
    assert plan.is_noop
    assert plan.target_links == ()


# ----------------------------------------------------------------------
# ecmp-split


def test_ecmp_split_steers_risky_path(diamond):
    model = model_for(diamond, {0: 0.8})
    plan = get_policy("ecmp-split").propose(diamond, model)
    assert [c.path for c in plan.changes] == [0]
    assert plan.changes[0].new_links == (2, 3)
    assert plan.target_links == (0,)
    assert plan.changes[0].predicted_before > plan.changes[0].predicted_after


def test_ecmp_split_empty_when_below_threshold(diamond):
    # No link crosses link_threshold and no path crosses path_threshold.
    model = model_for(diamond, {0: 0.05, 2: 0.05})
    plan = get_policy("ecmp-split").propose(diamond, model)
    assert plan.is_noop
    assert plan.target_links == ()


def test_ecmp_split_requires_min_gain(diamond):
    # Both branches equally bad: rerouting buys nothing, so no change.
    model = model_for(diamond, {0: 0.8, 2: 0.8})
    plan = get_policy("ecmp-split").propose(diamond, model)
    assert plan.is_noop


def test_ecmp_split_no_alternate_no_change(line):
    model = model_for(line, {0: 0.9})
    plan = get_policy("ecmp-split").propose(line, model)
    assert plan.is_noop


# ----------------------------------------------------------------------
# corropt-greedy


def test_corropt_drains_and_reroutes(diamond):
    model = model_for(diamond, {0: 0.7})
    plan = get_policy("corropt-greedy").propose(diamond, model)
    assert plan.target_links == (0,)
    assert [c.path for c in plan.changes] == [0]
    assert plan.changes[0].new_links == (2, 3)
    assert plan.metadata["candidates"] == [0]
    assert plan.metadata["rejected"] == []


def test_corropt_empty_when_no_link_above_threshold(diamond):
    model = model_for(diamond, {0: 0.2, 2: 0.1})
    plan = get_policy("corropt-greedy").propose(diamond, model)
    assert plan.is_noop
    assert plan.target_links == ()
    assert plan.metadata["candidates"] == []


def test_corropt_min_active_paths_forbids_every_candidate(line):
    # Draining either link of the only path strands it, so the
    # min-active-paths constraint rejects every candidate.
    model = model_for(line, {0: 0.9, 1: 0.8})
    plan = get_policy("corropt-greedy").propose(line, model)
    assert plan.is_noop
    assert plan.target_links == ()
    assert plan.metadata["candidates"] == [0, 1]
    assert plan.metadata["rejected"] == [0, 1]


def test_corropt_relaxed_constraint_allows_draining(line):
    # With the constraint relaxed the drain goes through even though the
    # stranded path keeps its old route (no alternate exists).
    model = model_for(line, {0: 0.9})
    plan = get_policy("corropt-greedy").propose(
        line, model, min_active_fraction=0.0
    )
    assert plan.target_links == (0,)
    assert plan.changes == ()


def test_corropt_respects_max_links(diamond):
    model = model_for(diamond, {0: 0.9, 1: 0.8})
    plan = get_policy("corropt-greedy").propose(diamond, model, max_links=1)
    assert plan.target_links == (0,)


def test_policies_are_deterministic(diamond):
    model = model_for(diamond, {0: 0.8, 3: 0.4})
    for name in policy_names():
        first = get_policy(name).propose(diamond, model)
        second = get_policy(name).propose(diamond, model)
        assert first == second
        assert first.to_json_dict() == second.to_json_dict()


def test_policy_dataclass_rejects_unknown_override():
    policy = MitigationPolicy(
        name="tmp",
        description="",
        builder=lambda network, model, params: ((), (), {}),
        defaults={"alpha": 1.0},
    )
    with pytest.raises(MitigationError, match="beta"):
        policy.propose(None, None, beta=2.0)
