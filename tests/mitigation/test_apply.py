"""Unit tests for plan application and rerouting (repro.mitigation.apply)."""

from __future__ import annotations

import pytest

from repro.exceptions import MitigationError
from repro.mitigation.apply import (
    alternate_route,
    apply_plan,
    link_adjacency,
    path_endpoints,
    reroutable_paths,
    routing_diversity,
)
from repro.mitigation.plan import MitigationPlan, RouteChange


def test_link_adjacency_sorted_by_link_index(diamond):
    adjacency = link_adjacency(diamond)
    assert adjacency[0] == [(0, 1), (2, 2)]
    assert adjacency[1] == [(1, 3)]
    assert adjacency[2] == [(3, 3)]


def test_path_endpoints(diamond):
    assert path_endpoints(diamond, diamond.paths[0]) == (0, 3)
    assert path_endpoints(diamond, diamond.paths[1]) == (0, 3)


def test_alternate_route_avoids_links(diamond):
    assert alternate_route(diamond, 0, 3, {0}) == (2, 3)
    assert alternate_route(diamond, 0, 3, {2}) == (0, 1)
    # Without an avoid set the smallest-link-index route wins the tie.
    assert alternate_route(diamond, 0, 3, ()) == (0, 1)


def test_alternate_route_none_when_cut(diamond):
    assert alternate_route(diamond, 0, 3, {0, 2}) is None
    assert alternate_route(diamond, 0, 3, {1, 3}) is None


def test_alternate_route_degenerate_endpoints(diamond):
    assert alternate_route(diamond, 0, 0, ()) is None


def test_alternate_route_deterministic(diamond):
    routes = {alternate_route(diamond, 0, 3, {0}) for _ in range(5)}
    assert routes == {(2, 3)}


def test_reroutable_paths_split(diamond, line):
    reroutes, stuck = reroutable_paths(diamond, {0})
    assert reroutes == {0: (2, 3)}
    assert stuck == []
    reroutes, stuck = reroutable_paths(line, {0})
    assert reroutes == {}
    assert stuck == [0]


def test_routing_diversity(diamond, line):
    assert routing_diversity(diamond) == 1.0
    assert routing_diversity(line) == 0.0


def _plan(policy="test", **kwargs):
    defaults = {
        "target_links": (0,),
        "changes": (
            RouteChange(
                path=0,
                old_links=(0, 1),
                new_links=(2, 3),
                predicted_before=0.8,
                predicted_after=0.1,
            ),
        ),
    }
    defaults.update(kwargs)
    return MitigationPlan(policy=policy, **defaults)


def test_apply_plan_rewrites_routes(diamond):
    rebuilt = apply_plan(diamond, _plan())
    assert rebuilt is not diamond
    assert rebuilt.name == "diamond+test"
    assert rebuilt.paths[0].links == (2, 3)
    assert rebuilt.paths[1].links == (2, 3)
    assert rebuilt.links == diamond.links
    assert rebuilt.num_paths == diamond.num_paths
    # The original network is untouched.
    assert diamond.paths[0].links == (0, 1)


def test_apply_noop_returns_same_network(diamond):
    assert apply_plan(diamond, MitigationPlan(policy="noop")) is diamond


def test_apply_rejects_unknown_path(diamond):
    plan = _plan(
        changes=(
            RouteChange(
                path=7,
                old_links=(0, 1),
                new_links=(2, 3),
                predicted_before=0.5,
                predicted_after=0.1,
            ),
        )
    )
    with pytest.raises(MitigationError, match="unknown path 7"):
        apply_plan(diamond, plan)


def test_apply_rejects_stale_old_route(diamond):
    plan = _plan(
        changes=(
            RouteChange(
                path=0,
                old_links=(0, 3),
                new_links=(2, 3),
                predicted_before=0.5,
                predicted_after=0.1,
            ),
        )
    )
    with pytest.raises(MitigationError, match="stale"):
        apply_plan(diamond, plan)


def test_apply_rejects_disconnected_route(diamond):
    plan = _plan(
        changes=(
            RouteChange(
                path=0,
                old_links=(0, 1),
                new_links=(0, 3),  # link 0 ends at vertex 1, link 3 starts at 2
                predicted_before=0.5,
                predicted_after=0.1,
            ),
        )
    )
    with pytest.raises(MitigationError, match="not connected"):
        apply_plan(diamond, plan)


def test_apply_rejects_endpoint_move(diamond):
    plan = _plan(
        changes=(
            RouteChange(
                path=0,
                old_links=(0, 1),
                new_links=(2,),  # 0 -> 2, drops the old destination 3
                predicted_before=0.5,
                predicted_after=0.1,
            ),
        )
    )
    with pytest.raises(MitigationError, match="moves its endpoints"):
        apply_plan(diamond, plan)


def test_apply_rejects_unknown_link(diamond):
    plan = _plan(
        changes=(
            RouteChange(
                path=0,
                old_links=(0, 1),
                new_links=(2, 9),
                predicted_before=0.5,
                predicted_after=0.1,
            ),
        )
    )
    with pytest.raises(MitigationError, match="unknown link 9"):
        apply_plan(diamond, plan)
