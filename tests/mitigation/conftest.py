"""Shared fixtures for the mitigation suite: tiny hand-built topologies."""

from __future__ import annotations

import pytest

from repro.topology.graph import Link, Network, Path


@pytest.fixture
def diamond():
    """Two vertex-disjoint routes 0 -> 3: upper (e0 e1), lower (e2 e3).

    Both monitored paths share endpoints, so either can be rerouted onto
    the other branch — the smallest topology where mitigation can act.
    """
    links = [
        Link(index=0, src=0, dst=1, asn=0),
        Link(index=1, src=1, dst=3, asn=0),
        Link(index=2, src=0, dst=2, asn=1),
        Link(index=3, src=2, dst=3, asn=1),
    ]
    paths = [
        Path(index=0, links=(0, 1)),
        Path(index=1, links=(2, 3)),
    ]
    return Network(links, paths, name="diamond")


@pytest.fixture
def line():
    """A single chain 0 -> 1 -> 2 with one monitored path: no alternates.

    Draining any link strands the only path, so the min-active-paths
    constraint must forbid every candidate here.
    """
    links = [
        Link(index=0, src=0, dst=1, asn=0),
        Link(index=1, src=1, dst=2, asn=0),
    ]
    paths = [Path(index=0, links=(0, 1))]
    return Network(links, paths, name="line")
