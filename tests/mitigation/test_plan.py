"""Unit tests for typed mitigation plans (repro.mitigation.plan)."""

from __future__ import annotations

import pytest

from repro.exceptions import MitigationError
from repro.mitigation.plan import MitigationPlan, RouteChange


def change(path=0, old=(0, 1), new=(2, 3), before=0.8, after=0.1):
    return RouteChange(
        path=path,
        old_links=old,
        new_links=new,
        predicted_before=before,
        predicted_after=after,
    )


def test_route_change_rejects_negative_path():
    with pytest.raises(MitigationError, match="path -1"):
        change(path=-1)


def test_route_change_rejects_empty_routes():
    with pytest.raises(MitigationError, match="non-empty"):
        change(old=())
    with pytest.raises(MitigationError, match="non-empty"):
        change(new=())


def test_route_change_rejects_identical_routes():
    with pytest.raises(MitigationError, match="does not change"):
        change(old=(0, 1), new=(0, 1))


def test_plan_normalises_targets_and_changes():
    plan = MitigationPlan(
        policy="test",
        target_links=(5, 1, 5, 3),
        changes=(change(path=4), change(path=2, old=(1, 3), new=(0, 2))),
    )
    assert plan.target_links == (1, 3, 5)
    assert [c.path for c in plan.changes] == [2, 4]
    assert plan.paths_disturbed == 2
    assert not plan.is_noop


def test_plan_rejects_duplicate_path_changes():
    with pytest.raises(MitigationError, match="two route changes"):
        MitigationPlan(
            policy="test",
            changes=(change(path=1), change(path=1, old=(1, 3), new=(0, 2))),
        )


def test_empty_plan_is_noop():
    plan = MitigationPlan(policy="noop")
    assert plan.is_noop
    assert plan.paths_disturbed == 0
    assert plan.target_links == ()


def test_plan_json_round_trip():
    plan = MitigationPlan(
        policy="corropt-greedy",
        target_links=(2, 0),
        changes=(change(path=1),),
        metadata={"candidates": [0, 2]},
    )
    rebuilt = MitigationPlan.from_json_dict(plan.to_json_dict())
    assert rebuilt == plan
    assert rebuilt.to_json_dict() == plan.to_json_dict()


def test_plan_json_dict_shape():
    raw = MitigationPlan(policy="noop").to_json_dict()
    assert raw == {
        "policy": "noop",
        "target_links": [],
        "paths_disturbed": 0,
        "changes": [],
        "metadata": {},
    }
