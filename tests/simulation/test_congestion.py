"""Tests for the driver-based congestion ground truth."""

from __future__ import annotations

import pytest

from repro.exceptions import ScenarioError
from repro.simulation.congestion import (
    CongestionModel,
    Driver,
    NonStationaryModel,
    build_congestion_model,
)
from repro.topology.builders import network_from_paths


def test_driver_validation():
    with pytest.raises(ScenarioError):
        Driver(probability=1.5, links=frozenset({0}))
    with pytest.raises(ScenarioError):
        Driver(probability=0.5, links=frozenset())


def test_marginal_single_driver():
    model = CongestionModel(2, [Driver(0.3, frozenset({0}))])
    assert model.marginal(0) == pytest.approx(0.3)
    assert model.marginal(1) == 0.0


def test_marginal_stacked_drivers():
    model = CongestionModel(
        1, [Driver(0.2, frozenset({0})), Driver(0.5, frozenset({0}))]
    )
    assert model.marginal(0) == pytest.approx(1 - 0.8 * 0.5)


def test_prob_all_good_shared_driver():
    model = CongestionModel(2, [Driver(0.3, frozenset({0, 1}))])
    # Perfectly correlated: both good iff the driver does not fire.
    assert model.prob_all_good([0, 1]) == pytest.approx(0.7)
    assert model.prob_all_good([0]) == pytest.approx(0.7)


def test_prob_all_good_independent_links():
    model = CongestionModel(
        2, [Driver(0.3, frozenset({0})), Driver(0.4, frozenset({1}))]
    )
    assert model.prob_all_good([0, 1]) == pytest.approx(0.7 * 0.6)


def test_prob_all_good_empty():
    model = CongestionModel(2, [Driver(0.3, frozenset({0}))])
    assert model.prob_all_good([]) == 1.0


def test_prob_all_congested_inclusion_exclusion():
    model = CongestionModel(
        2, [Driver(0.3, frozenset({0})), Driver(0.4, frozenset({1}))]
    )
    assert model.prob_all_congested([0, 1]) == pytest.approx(0.3 * 0.4)


def test_prob_all_congested_correlated():
    model = CongestionModel(2, [Driver(0.3, frozenset({0, 1}))])
    # Perfectly correlated pair congested together with driver probability.
    assert model.prob_all_congested([0, 1]) == pytest.approx(0.3)


def test_congestable_links():
    model = CongestionModel(
        3, [Driver(0.3, frozenset({0})), Driver(0.2, frozenset({2}))]
    )
    assert model.congestable_links() == frozenset({0, 2})


def test_zero_probability_drivers_dropped():
    model = CongestionModel(2, [Driver(0.0, frozenset({0}))])
    assert model.congestable_links() == frozenset()


def test_sample_shape_and_support():
    model = CongestionModel(3, [Driver(0.5, frozenset({1}))])
    states = model.sample(100, 0)
    assert states.shape == (100, 3)
    assert not states[:, 0].any()
    assert not states[:, 2].any()


def test_sample_frequency_matches_marginal():
    model = CongestionModel(1, [Driver(0.3, frozenset({0}))])
    states = model.sample(20000, 1)
    assert states[:, 0].mean() == pytest.approx(0.3, abs=0.02)


def test_sample_correlation_is_perfect_for_shared_driver():
    model = CongestionModel(2, [Driver(0.4, frozenset({0, 1}))])
    states = model.sample(1000, 2)
    assert (states[:, 0] == states[:, 1]).all()


def test_driver_unknown_link_rejected():
    with pytest.raises(ScenarioError):
        CongestionModel(1, [Driver(0.3, frozenset({5}))])


def test_correlated_groups():
    model = CongestionModel(
        3,
        [
            Driver(0.2, frozenset({0, 1})),
            Driver(0.3, frozenset({2})),
        ],
    )
    assert model.correlated_groups() == [frozenset({0, 1})]


# ----------------------------------------------------------------------
# build_congestion_model calibration
# ----------------------------------------------------------------------
def _correlated_network():
    return network_from_paths(
        [["a", "b"], ["c", "b"]],
        asn_of={"a": 1, "b": 1, "c": 2},
        router_links_of={"a": [7, 8], "c": [7, 9], "b": [10]},
    )


def test_build_model_exact_marginals():
    network = _correlated_network()
    targets = {0: 0.4, 1: 0.2, 2: 0.5}
    model = build_congestion_model(network, targets, correlation_strength=0.8)
    for link, expected in targets.items():
        assert model.marginal(link) == pytest.approx(expected)


def test_build_model_creates_shared_driver():
    network = _correlated_network()
    # Links a (0) and c (2) share router link 7.
    model = build_congestion_model(network, {0: 0.4, 2: 0.5}, correlation_strength=0.8)
    assert frozenset({0, 2}) in model.correlated_groups()
    # Correlation exists: joint good probability exceeds the product.
    assert model.prob_all_good([0, 2]) > model.prob_all_good([0]) * model.prob_all_good([2]) + 1e-9


def test_build_model_zero_strength_independent():
    network = _correlated_network()
    model = build_congestion_model(network, {0: 0.4, 2: 0.5}, correlation_strength=0.0)
    assert model.correlated_groups() == []
    assert model.prob_all_good([0, 2]) == pytest.approx(
        model.prob_all_good([0]) * model.prob_all_good([2])
    )


def test_build_model_rejects_bad_marginal():
    network = _correlated_network()
    with pytest.raises(ScenarioError):
        build_congestion_model(network, {0: 1.0})


def test_build_model_rejects_bad_strength():
    network = _correlated_network()
    with pytest.raises(ScenarioError):
        build_congestion_model(network, {0: 0.4}, correlation_strength=1.5)


# ----------------------------------------------------------------------
# NonStationaryModel
# ----------------------------------------------------------------------
def test_non_stationary_weighted_averages():
    a = CongestionModel(1, [Driver(0.2, frozenset({0}))])
    b = CongestionModel(1, [Driver(0.6, frozenset({0}))])
    model = NonStationaryModel([(a, 10), (b, 30)])
    assert model.marginal(0) == pytest.approx(0.25 * 0.2 + 0.75 * 0.6)
    assert model.prob_all_good([0]) == pytest.approx(0.25 * 0.8 + 0.75 * 0.4)


def test_non_stationary_sampling_cycles_epochs():
    a = CongestionModel(1, [Driver(1.0, frozenset({0}))])
    b = CongestionModel(1, [])
    model = NonStationaryModel([(a, 5), (b, 5)])
    states = model.sample(20, 0)
    assert states[:5, 0].all()
    assert not states[5:10, 0].any()
    assert states[10:15, 0].all()


def test_non_stationary_empirical_matches_average():
    a = CongestionModel(1, [Driver(0.2, frozenset({0}))])
    b = CongestionModel(1, [Driver(0.8, frozenset({0}))])
    model = NonStationaryModel([(a, 25), (b, 25)])
    states = model.sample(20000, 3)
    assert states[:, 0].mean() == pytest.approx(model.marginal(0), abs=0.02)


def test_non_stationary_validation():
    a = CongestionModel(1, [])
    with pytest.raises(ScenarioError):
        NonStationaryModel([])
    with pytest.raises(ScenarioError):
        NonStationaryModel([(a, 0)])
    b = CongestionModel(2, [])
    with pytest.raises(ScenarioError):
        NonStationaryModel([(a, 5), (b, 5)])
