"""Tests for the scenario library registry and its generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ScenarioError
from repro.simulation.congestion import CongestionModel, NonStationaryModel
from repro.simulation.experiment import run_experiment
from repro.simulation.library import (
    SCENARIOS,
    ScenarioGenerator,
    build_named_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.topology.builders import network_from_paths

#: Scenario names this PR guarantees (new generators + classic regimes).
EXPECTED = {
    "random",
    "concentrated",
    "no_independence",
    "no_stationarity",
    "diurnal",
    "gravity",
    "cascade",
    "flash_crowd",
    "maintenance",
}


def _uncorrelated_network():
    """A topology without shared router-level links."""
    return network_from_paths([["a", "b"], ["a", "c"], ["d", "c"]])


def test_registry_contents():
    assert EXPECTED <= set(scenario_names())
    for generator in SCENARIOS.values():
        assert generator.description


def test_unknown_scenario_rejected():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("sharknado")


def test_duplicate_registration_rejected():
    generator = SCENARIOS["diurnal"]
    with pytest.raises(ScenarioError, match="already registered"):
        register_scenario(generator)
    register_scenario(generator, replace_existing=True)


def test_unknown_parameter_override_rejected(small_brite):
    with pytest.raises(ScenarioError, match="no parameters"):
        build_named_scenario("diurnal", small_brite, 0, bogus_knob=1)


def test_classic_generators_match_build_scenario(small_brite):
    """The library's classic regimes delegate to the Section 3.2 builder."""
    from repro.simulation.scenarios import (
        ScenarioConfig,
        ScenarioKind,
        build_scenario,
    )

    direct = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 17)
    registered = build_named_scenario("random", small_brite, 17)
    assert registered.congestable == direct.congestable
    assert np.array_equal(registered.true_marginals(), direct.true_marginals())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_generators_are_deterministic(small_brite, name):
    a = build_named_scenario(name, small_brite, 5)
    b = build_named_scenario(name, small_brite, 5)
    assert a.congestable == b.congestable
    assert np.array_equal(a.true_marginals(), b.true_marginals())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_generators_produce_valid_ground_truth(small_brite, name):
    scenario = build_named_scenario(name, small_brite, 5)
    marginals = scenario.true_marginals()
    assert (marginals >= 0.0).all() and (marginals < 1.0).all()
    assert scenario.ground_truth.congestable_links() <= scenario.congestable
    # The ground truth drives the standard experiment pipeline unchanged.
    result = run_experiment(scenario, 20, random_state=1, oracle=True)
    assert result.link_states.shape == (20, small_brite.num_links)


def test_correlation_requiring_generators_declare_it():
    network = _uncorrelated_network()
    for name in ("no_independence", "no_stationarity"):
        generator = get_scenario(name)
        assert not generator.supports(network)
        with pytest.raises(ScenarioError, match="correlated link groups"):
            generator.build(network, 0)
    for name in sorted(EXPECTED - {"no_independence", "no_stationarity"}):
        assert get_scenario(name).supports(network)


# ----------------------------------------------------------------------
# Generator-specific behaviour
# ----------------------------------------------------------------------
def test_diurnal_cycles_marginals(small_brite):
    scenario = build_named_scenario("diurnal", small_brite, 3)
    truth = scenario.ground_truth
    assert isinstance(truth, NonStationaryModel)
    assert len(truth.epochs) == 8
    link = sorted(scenario.congestable)[0]
    per_epoch = [model.marginal(link) for model, _ in truth.epochs]
    # Trough at the start of the cycle, peak mid-cycle.
    assert per_epoch[0] == pytest.approx(min(per_epoch))
    assert max(per_epoch) > 2.5 * min(per_epoch)


def test_diurnal_respects_overrides(small_brite):
    scenario = build_named_scenario(
        "diurnal", small_brite, 3, num_epochs=4, epoch_length=10
    )
    truth = scenario.ground_truth
    assert len(truth.epochs) == 4
    assert all(length == 10 for _, length in truth.epochs)


def test_gravity_congests_loaded_links(small_brite):
    scenario = build_named_scenario("gravity", small_brite, 3)
    truth = scenario.ground_truth
    assert isinstance(truth, CongestionModel)
    degrees = small_brite.link_degrees()
    congested_degree = np.mean([degrees[e] for e in scenario.congestable])
    quiet = [e for e in range(small_brite.num_links) if e not in scenario.congestable]
    quiet_degree = np.mean([degrees[e] for e in quiet])
    # Load concentrates on criss-crossed links, so the congested set is
    # systematically higher-degree than the rest.
    assert congested_degree > quiet_degree


def test_cascade_builds_chained_groups(small_brite):
    scenario = build_named_scenario("cascade", small_brite, 3)
    truth = scenario.ground_truth
    groups = truth.correlated_groups()
    assert len(groups) == 3
    for group in groups:
        assert len(group) >= 2
    # Groups chain: each later group is adjacent to an earlier one, so the
    # union is one connected region of the link-adjacency graph.
    from repro.simulation.library import _link_adjacency

    adjacency = _link_adjacency(small_brite)
    seen = set(sorted(groups, key=sorted)[0])
    # Union-reachability over the congested set.
    frontier = list(seen)
    members = set().union(*groups)
    while frontier:
        link = frontier.pop()
        for neighbor in adjacency[link]:
            if neighbor in members and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert seen == members


def test_flash_crowd_spikes_hot_links(small_brite):
    scenario = build_named_scenario("flash_crowd", small_brite, 3)
    truth = scenario.ground_truth
    assert isinstance(truth, NonStationaryModel)
    quiet_model, quiet_length = truth.epochs[0]
    spike_model, spike_length = truth.epochs[1]
    assert quiet_length == 30 and spike_length == 10
    spiked = [
        e
        for e in scenario.congestable
        if spike_model.marginal(e) >= 0.8 and quiet_model.marginal(e) < 0.5
    ]
    assert spiked, "no hot link spikes in the spike epoch"
    # The hot links form whole monitored paths into one destination.
    hot = set(spiked)
    assert any(hot >= set(path.links) for path in small_brite.paths)


def test_maintenance_degrades_one_as(small_brite):
    scenario = build_named_scenario("maintenance", small_brite, 3)
    truth = scenario.ground_truth
    normal_model, _ = truth.epochs[0]
    window_model, _ = truth.epochs[1]
    maintained = [
        members
        for members in small_brite.correlation_sets
        if all(window_model.marginal(e) >= 0.8 for e in members)
    ]
    assert len(maintained) == 1
    # Outside the window the maintained AS behaves normally.
    assert all(normal_model.marginal(e) < 0.8 for e in sorted(maintained[0]))


def test_custom_registration_roundtrip(small_brite):
    def builder(network, rng, params):
        from repro.simulation.congestion import Driver

        model = CongestionModel(
            network.num_links,
            [Driver(probability=params["p"], links=frozenset({0}))],
        )
        return model, frozenset({0})

    generator = ScenarioGenerator(
        name="test-custom",
        description="single-link test scenario",
        builder=builder,
        defaults={"p": 0.5},
    )
    register_scenario(generator)
    try:
        scenario = build_named_scenario("test-custom", small_brite, 0, p=0.25)
        assert scenario.ground_truth.marginal(0) == pytest.approx(0.25)
        assert scenario.name == "test-custom"
    finally:
        del SCENARIOS["test-custom"]
