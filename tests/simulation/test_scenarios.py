"""Tests for the congestion scenario builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ScenarioError
from repro.simulation.congestion import NonStationaryModel
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import (
    Scenario,
    ScenarioConfig,
    ScenarioKind,
    build_scenario,
)
from repro.topology.builders import network_from_paths


def test_config_validation():
    with pytest.raises(ScenarioError):
        ScenarioConfig(congestable_fraction=0.0).validate()
    with pytest.raises(ScenarioError):
        ScenarioConfig(min_marginal=0.5, max_marginal=0.4).validate()
    with pytest.raises(ScenarioError):
        ScenarioConfig(epoch_length=0).validate()


def test_placement_kind_for_no_stationarity():
    config = ScenarioConfig(kind=ScenarioKind.NO_STATIONARITY)
    assert config.placement_kind is ScenarioKind.NO_INDEPENDENCE
    assert config.effective_non_stationary


def test_non_stationary_flag_overlays_any_kind():
    config = ScenarioConfig(kind=ScenarioKind.RANDOM, non_stationary=True)
    assert config.placement_kind is ScenarioKind.RANDOM
    assert config.effective_non_stationary


def test_random_scenario_fraction(small_brite):
    config = ScenarioConfig(kind=ScenarioKind.RANDOM, congestable_fraction=0.1)
    scenario = build_scenario(small_brite, config, 0)
    expected = max(1, round(0.1 * small_brite.num_links))
    assert len(scenario.congestable) == expected
    assert scenario.ground_truth.congestable_links() == scenario.congestable


def test_random_scenario_deterministic(small_brite):
    config = ScenarioConfig(kind=ScenarioKind.RANDOM)
    a = build_scenario(small_brite, config, 3)
    b = build_scenario(small_brite, config, 3)
    assert a.congestable == b.congestable
    assert a.true_marginals().tolist() == b.true_marginals().tolist()


def test_concentrated_scenario_prefers_edge(small_brite):
    config = ScenarioConfig(kind=ScenarioKind.CONCENTRATED)
    scenario = build_scenario(small_brite, config, 0)
    edge = set(small_brite.edge_links())
    covered = len(scenario.congestable & frozenset(edge))
    assert covered >= len(scenario.congestable) * 0.8


def test_no_independence_links_are_correlated(small_brite):
    config = ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE)
    scenario = build_scenario(small_brite, config, 0)
    groups = small_brite.shared_router_links().values()
    for link in scenario.congestable:
        partners = set()
        for group in groups:
            if link in group:
                partners |= set(group) - {link}
        assert partners & scenario.congestable, f"link {link} uncorrelated"


def test_no_independence_requires_correlated_topology():
    network = network_from_paths([["a", "b"], ["c", "d"]])
    config = ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE)
    with pytest.raises(ScenarioError):
        build_scenario(network, config, 0)


def test_no_stationarity_builds_epochs(small_brite):
    config = ScenarioConfig(
        kind=ScenarioKind.NO_STATIONARITY, epoch_length=10, num_epochs=3
    )
    scenario = build_scenario(small_brite, config, 0)
    assert isinstance(scenario.ground_truth, NonStationaryModel)
    assert len(scenario.ground_truth.epochs) == 3


def test_marginal_range(small_brite):
    config = ScenarioConfig(
        kind=ScenarioKind.RANDOM, min_marginal=0.2, max_marginal=0.6
    )
    scenario = build_scenario(small_brite, config, 1)
    marginals = scenario.true_marginals()
    positive = marginals[marginals > 0]
    assert (positive >= 0.15).all()
    assert (positive <= 0.65).all()


def test_run_experiment_shapes(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(), 0)
    result = run_experiment(scenario, 50, random_state=1, oracle=True)
    assert result.num_intervals == 50
    assert result.link_states.shape == (50, small_brite.num_links)
    assert result.observations.num_paths == small_brite.num_paths


def test_run_experiment_records(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(), 0)
    result = run_experiment(scenario, 10, random_state=1, oracle=True)
    records = result.records()
    assert len(records) == 10
    for record in records:
        # Oracle observations: congested paths are exactly those crossing a
        # congested link.
        expected = small_brite.paths_covering(record.congested_links)
        assert record.congested_paths == expected


def test_run_experiment_deterministic(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(), 0)
    a = run_experiment(scenario, 20, random_state=9)
    b = run_experiment(scenario, 20, random_state=9)
    assert (a.link_states == b.link_states).all()
    assert (a.observations.matrix == b.observations.matrix).all()


def test_empirical_marginals_close_to_truth(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(), 0)
    result = run_experiment(scenario, 4000, random_state=2, oracle=True)
    truth = scenario.true_marginals()
    measured = result.empirical_marginals()
    assert np.abs(truth - measured).max() < 0.05
