"""Tests for the loss model and packet-level probing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ScenarioError
from repro.simulation.loss import LossModel
from repro.simulation.probing import PathProber, oracle_path_status


def test_loss_ranges():
    model = LossModel(threshold=0.01)
    states = np.array([[False, True], [True, False]])
    loss = model.assign(states, 0)
    assert loss.shape == states.shape
    good = loss[~states]
    congested = loss[states]
    assert (good <= 0.01).all() and (good >= 0.0).all()
    assert (congested > 0.01).all() and (congested <= 1.0).all()


def test_loss_threshold_validation():
    with pytest.raises(ScenarioError):
        LossModel(threshold=0.0)
    with pytest.raises(ScenarioError):
        LossModel(threshold=1.0)


def test_path_good_threshold_duffield_rule():
    model = LossModel(threshold=0.01)
    assert model.path_good_threshold(1) == pytest.approx(0.01)
    assert model.path_good_threshold(3) == pytest.approx(1 - 0.99**3)
    with pytest.raises(ScenarioError):
        model.path_good_threshold(0)


def test_oracle_status_matches_separability(fig1_case1):
    # e1 congested -> p1, p2 congested, p3 good.
    states = np.array([[True, False, False, False]])
    obs = oracle_path_status(fig1_case1, states)
    assert obs.congested_paths(0) == frozenset({0, 1})


def test_oracle_all_good(fig1_case1):
    states = np.zeros((3, 4), dtype=bool)
    obs = oracle_path_status(fig1_case1, states)
    assert not obs.matrix.any()


def test_prober_validation():
    with pytest.raises(ScenarioError):
        PathProber(num_packets=0)


def test_prober_shape(fig1_case1):
    prober = PathProber(num_packets=200)
    states = np.zeros((5, 4), dtype=bool)
    obs = prober.observe(fig1_case1, states, 0)
    assert obs.matrix.shape == (5, 3)


def test_prober_rejects_wrong_width(fig1_case1):
    prober = PathProber(num_packets=200)
    with pytest.raises(ScenarioError):
        prober.observe(fig1_case1, np.zeros((5, 7), dtype=bool), 0)


def test_prober_detects_heavy_congestion(fig1_case1):
    # With e1 congested at high loss most intervals should flag p1 and p2.
    prober = PathProber(num_packets=2000)
    states = np.zeros((200, 4), dtype=bool)
    states[:, 0] = True
    obs = prober.observe(fig1_case1, states, 1)
    # Congested loss is drawn U(0.01, 1); most draws are far above the
    # detection threshold, so detection is frequent though not certain.
    assert obs.matrix[:, 0].mean() > 0.9
    assert obs.matrix[:, 1].mean() > 0.9


def test_prober_rarely_flags_good_paths(fig1_case1):
    prober = PathProber(num_packets=2000)
    states = np.zeros((300, 4), dtype=bool)
    obs = prober.observe(fig1_case1, states, 2)
    # False-positive rate must stay small with a healthy probe budget (it
    # cannot reach 0: good-link loss draws near f put the true path loss at
    # the detection threshold — the E2E Monitoring inaccuracy the paper
    # acknowledges).
    assert obs.matrix.mean() < 0.06


def test_prober_agrees_with_oracle_mostly(fig1_case1, fig1_model):
    states = fig1_model.sample(300, 5)
    oracle = oracle_path_status(fig1_case1, states).matrix
    probed = PathProber(num_packets=2000).observe(fig1_case1, states, 6).matrix
    agreement = (oracle == probed).mean()
    assert agreement > 0.93
