"""Tests for the router-level to AS-level derivation."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.aslevel import AsLevelBuilder


def test_single_route_segmentation():
    # Routers 0,1 in AS 0; 2,3 in AS 1; 4 in AS 2.
    asn_of = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2}
    builder = AsLevelBuilder(asn_of)
    assert builder.add_route((0, 1, 2, 3, 4))
    network = builder.build()
    # Segments: intra-AS0 (0-1), inter (1-2), intra-AS1 (2-3), inter (3-4).
    assert network.num_links == 4
    assert network.num_paths == 1
    kinds = [link.asn for link in network.links]
    # Inter-domain links are attributed to the entered AS.
    assert kinds == [0, 1, 1, 2]


def test_links_deduplicated_across_routes():
    asn_of = {0: 0, 1: 1, 2: 1, 3: 2, 4: 2}
    builder = AsLevelBuilder(asn_of)
    assert builder.add_route((0, 1, 2, 3))
    assert builder.add_route((0, 1, 2, 4))
    network = builder.build()
    # Shared prefix 0->1->2 contributes the same two AS-level links.
    first, second = network.paths
    assert first.links[0] == second.links[0]
    assert first.links[1] == second.links[1]
    assert first.links[-1] != second.links[-1]


def test_intra_segments_capture_router_links():
    asn_of = {0: 0, 1: 1, 2: 1, 3: 1, 4: 2}
    builder = AsLevelBuilder(asn_of)
    assert builder.add_route((0, 1, 2, 3, 4))
    network = builder.build()
    intra = [link for link in network.links if link.asn == 1 and len(link.router_links) == 2]
    assert len(intra) == 1  # the 1->2->3 intra-domain path


def test_shared_router_edge_creates_correlation():
    # Two routes crossing AS 1 via different entry points but a shared
    # internal edge 2->3.
    asn_of = {0: 0, 5: 0, 1: 1, 2: 1, 3: 1, 4: 2, 6: 2}
    builder = AsLevelBuilder(asn_of)
    assert builder.add_route((0, 1, 2, 3, 4))
    assert builder.add_route((5, 2, 3, 6))
    network = builder.build()
    assert len(network.correlated_link_pairs()) >= 1


def test_source_as_exclusion():
    asn_of = {0: 0, 1: 0, 2: 1, 3: 1}
    builder = AsLevelBuilder(asn_of, source_asn=0, include_source_as=False)
    assert builder.add_route((0, 1, 2, 3))
    network = builder.build()
    # The intra-source segment 0->1 is dropped; inter 1->2 (entering AS 1)
    # and intra 2->3 remain.
    assert network.num_links == 2
    assert all(link.asn == 1 for link in network.links)


def test_single_as_route_rejected_when_source_excluded():
    asn_of = {0: 0, 1: 0, 2: 0}
    builder = AsLevelBuilder(asn_of, source_asn=0, include_source_as=False)
    assert not builder.add_route((0, 1, 2))
    with pytest.raises(TopologyError):
        builder.build()


def test_route_with_unmapped_router():
    builder = AsLevelBuilder({0: 0, 1: 1})
    with pytest.raises(TopologyError):
        builder.add_route((0, 1, 9))


def test_short_route_rejected():
    builder = AsLevelBuilder({0: 0})
    assert not builder.add_route((0,))


def test_as_level_loop_rejected():
    # Route that re-enters AS 1 through the same inter-domain link.
    asn_of = {0: 0, 1: 1, 2: 0, 3: 1}
    builder = AsLevelBuilder(asn_of)
    # 0->1 (inter into AS1), 1->2 (inter into AS0), 2->1 (inter into AS1,
    # distinct link since entry differs) — fine; loops need identical links.
    assert builder.add_route((0, 1, 2, 3))


def test_num_routes_counter():
    asn_of = {0: 0, 1: 1}
    builder = AsLevelBuilder(asn_of)
    assert builder.num_routes == 0
    builder.add_route((0, 1))
    assert builder.num_routes == 1
