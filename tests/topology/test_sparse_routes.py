"""Sparse large-topology routing structures.

The internet-scale path replaces per-object Python structures with flat
arrays: :class:`CompactGraph` (CSR adjacency), :class:`SparseRouteTable`
(CSR route storage), :func:`select_endpoint_pairs_lazy` (O(count) pair
selection), plus the deterministic BFS shared by both graph backends.
The load-bearing property throughout is *identity* with the eager
``networkx`` equivalents — the sparse structures may only change memory,
never a route.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import obs
from repro.exceptions import TopologyError
from repro.topology.routing import (
    CompactGraph,
    RouteOracle,
    SparseRouteTable,
    bfs_parents_graph,
    route_from_parents,
    select_endpoint_pairs_lazy,
    shortest_route,
)


def _random_graph(num_nodes: int, num_edges: int, seed: int):
    """A random connected-ish multigraph as edge arrays + its nx.Graph."""
    rng = np.random.default_rng(seed)
    src = rng.integers(num_nodes, size=num_edges).astype(np.uint32)
    dst = rng.integers(num_nodes, size=num_edges).astype(np.uint32)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    graph.add_edges_from(
        (int(a), int(b)) for a, b in zip(src, dst) if int(a) != int(b)
    )
    return src, dst, graph


class TestCompactGraph:
    def test_matches_nx_adjacency(self):
        src, dst, graph = _random_graph(60, 150, seed=1)
        compact = CompactGraph.from_edges(60, src, dst)
        assert compact.num_edges == graph.number_of_edges()
        for node in range(60):
            assert list(compact.neighbors_of(node)) == sorted(graph.neighbors(node))
            assert compact.degree(node) == graph.degree(node)

    def test_drops_self_loops_and_duplicate_edges(self):
        compact = CompactGraph.from_edges(
            4, np.array([0, 0, 0, 2, 1]), np.array([1, 1, 0, 3, 0])
        )
        assert compact.num_edges == 2
        assert list(compact.neighbors_of(0)) == [1]

    def test_rejects_out_of_range_endpoints(self):
        with pytest.raises(TopologyError, match="out of range"):
            CompactGraph.from_edges(3, np.array([0]), np.array([5]))
        with pytest.raises(TopologyError, match="differ in length"):
            CompactGraph.from_edges(3, np.array([0, 1]), np.array([2]))

    def test_bfs_parents_identical_to_nx_backend(self):
        """Every (source, target) route agrees between the two backends."""
        src, dst, graph = _random_graph(80, 200, seed=7)
        compact = CompactGraph.from_edges(80, src, dst)
        for source in (0, 13, 79):
            dict_parents = bfs_parents_graph(graph, source)
            array_parents = compact.bfs_parents(source)
            for target in range(80):
                dense = route_from_parents(dict_parents, source, target)
                sparse = route_from_parents(array_parents, source, target)
                assert dense == sparse
                if dense is not None:
                    # Same hop count as a true shortest path.
                    expected = shortest_route(graph, source, target)
                    assert len(dense) == len(expected)

    def test_unreachable_targets_return_none(self):
        compact = CompactGraph.from_edges(4, np.array([0]), np.array([1]))
        parents = compact.bfs_parents(0)
        assert route_from_parents(parents, 0, 3) is None
        assert route_from_parents({0: 0}, 0, 3) is None

    def test_nbytes_is_array_backed(self):
        compact = CompactGraph.from_edges(
            10_000, *map(np.asarray, _random_graph(10_000, 20_000, seed=3)[:2])
        )
        # CSR storage: well under 1MB where nx dict-of-dicts costs tens.
        assert compact.nbytes < 1_000_000


class TestSparseRouteTable:
    def test_appends_and_reads_back(self):
        table = SparseRouteTable()
        routes = [(1, 5, 9), (2,), (7, 7, 7, 7)]
        for route in routes:
            table.append(route)
        assert len(table) == 3
        assert table.num_items == 8
        for index, route in enumerate(routes):
            assert tuple(table.route(index)) == route
        assert [tuple(r) for r in table] == [tuple(r) for r in routes]

    def test_growth_past_initial_capacity(self):
        table = SparseRouteTable()
        expected = []
        rng = np.random.default_rng(11)
        for index in range(500):
            route = tuple(int(x) for x in rng.integers(1000, size=1 + index % 30))
            expected.append(route)
            assert table.append(route) == index
        assert [tuple(r) for r in table] == expected

    def test_rejects_non_1d_routes_and_bad_indices(self):
        table = SparseRouteTable()
        with pytest.raises(TopologyError, match="1-D"):
            table.append([[1, 2], [3, 4]])
        table.append([1, 2])
        with pytest.raises(TopologyError, match="no route 5"):
            table.route(5)


class TestSelectEndpointPairsLazy:
    def test_deterministic_distinct_and_disjoint(self):
        sources = list(range(10))
        destinations = list(range(100, 400))
        first = select_endpoint_pairs_lazy(sources, destinations, 200, 5)
        second = select_endpoint_pairs_lazy(sources, destinations, 200, 5)
        assert first == second
        assert len(set(first)) == 200
        for source, destination in first:
            assert source in range(10)
            assert destination in range(100, 400)

    def test_both_sampling_branches(self):
        sources, destinations = [0, 1], [10, 11, 12]
        # 4 * count >= total: permutation branch, exhaustive draw works.
        dense = select_endpoint_pairs_lazy(sources, destinations, 6, 2)
        assert sorted(set(dense)) == [(s, d) for s in sources for d in destinations]
        # Rejection branch on a large virtual grid: O(count) memory.
        sparse = select_endpoint_pairs_lazy(range(1000), range(1000, 3000), 50, 2)
        assert len(set(sparse)) == 50

    def test_errors(self):
        with pytest.raises(TopologyError, match="empty pool"):
            select_endpoint_pairs_lazy([], [1], 1, 0)
        with pytest.raises(TopologyError, match="overlap"):
            select_endpoint_pairs_lazy([1, 2], [2, 3], 1, 0)
        with pytest.raises(TopologyError, match="only 4 exist"):
            select_endpoint_pairs_lazy([0, 1], [2, 3], 5, 0)


class TestRouteOracleBound:
    def test_lru_cap_bounds_entries_with_identical_answers(self):
        graph = nx.path_graph(30)
        unbounded = RouteOracle(graph)
        bounded = RouteOracle(graph, max_entries=4)
        pairs = [(0, t) for t in range(1, 25)] + [(0, t) for t in range(1, 25)]
        for source, target in pairs:
            assert bounded.shortest(source, target) == unbounded.shortest(
                source, target
            )
        assert len(bounded._shortest) <= 4
        # The second pass of an unbounded oracle is all hits; the bounded
        # one recomputed evicted pairs but never answered differently.
        assert unbounded.hits > 0
        assert bounded.misses > unbounded.misses

    def test_rejects_non_positive_cap(self):
        with pytest.raises(TopologyError, match="max_entries"):
            RouteOracle(nx.path_graph(3), max_entries=0)

    def test_exports_size_and_hit_rate_gauges(self):
        graph = nx.path_graph(10)
        with obs.use_mode("metrics"), obs.capture_metrics() as captured:
            oracle = RouteOracle(graph, max_entries=8)
            oracle.shortest(0, 5)
            oracle.shortest(0, 5)
        gauges = {
            name: value for name, _labels, value in captured.snapshot()["gauges"]
        }
        assert gauges["repro_route_oracle_entries"] == float(oracle.num_entries)
        assert gauges["repro_route_oracle_hit_rate"] == 0.5
