"""Round-trip coverage for topology generation and JSON persistence.

Satellite of the datasets PR: every bundled dataset fixture, parsed by its
loader, must survive a serialize/parse round trip losslessly, and the
BRITE generator's output must be fully reconstructible from its JSON form
(the pipeline operators use to snapshot generated topologies).
"""

from __future__ import annotations

import pytest

from repro.datasets import dataset_names, load_dataset
from repro.topology.brite import BriteConfig, generate_brite_network
from repro.topology.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


def _assert_identical(a, b):
    """Structural equality down to router-level correlation structure."""
    assert a.name == b.name
    assert a.num_links == b.num_links
    assert a.num_paths == b.num_paths
    assert [
        (link.index, link.src, link.dst, link.asn, link.router_links)
        for link in a.links
    ] == [
        (link.index, link.src, link.dst, link.asn, link.router_links)
        for link in b.links
    ]
    assert [p.links for p in a.paths] == [p.links for p in b.paths]
    assert (a.incidence == b.incidence).all()
    assert a.correlation_sets == b.correlation_sets
    assert a.shared_router_links() == b.shared_router_links()
    assert a.describe() == b.describe()


@pytest.mark.parametrize("name", sorted(dataset_names()))
def test_every_dataset_fixture_round_trips(name, tmp_path):
    network = load_dataset(name)
    target = tmp_path / f"{name}.json"
    save_network(network, target)
    _assert_identical(network, load_network(target))


@pytest.mark.parametrize("name", sorted(dataset_names()))
def test_every_dataset_dict_round_trips(name):
    network = load_dataset(name)
    _assert_identical(network, network_from_dict(network_to_dict(network)))


def test_brite_network_round_trips(tmp_path):
    config = BriteConfig(num_ases=8, num_paths=60, num_destinations=25)
    network = generate_brite_network(config, 11)
    target = tmp_path / "brite.json"
    save_network(network, target)
    loaded = load_network(target)
    _assert_identical(network, loaded)
    # The reloaded network supports the full correlation machinery.
    assert loaded.correlated_link_pairs() == network.correlated_link_pairs()


def test_brite_round_trip_is_seed_stable(tmp_path):
    """Serialize -> load -> regenerate: the generator and the snapshot agree."""
    config = BriteConfig(num_ases=8, num_paths=60, num_destinations=25)
    network = generate_brite_network(config, 11)
    save_network(network, tmp_path / "a.json")
    regenerated = generate_brite_network(config, 11)
    _assert_identical(load_network(tmp_path / "a.json"), regenerated)
