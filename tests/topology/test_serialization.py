"""Tests for topology JSON persistence."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TopologyError
from repro.topology.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


def test_round_trip_fig1(fig1_case1, tmp_path):
    target = tmp_path / "fig1.json"
    save_network(fig1_case1, target)
    loaded = load_network(target)
    assert loaded.name == fig1_case1.name
    assert loaded.num_links == fig1_case1.num_links
    assert [p.links for p in loaded.paths] == [p.links for p in fig1_case1.paths]
    assert loaded.correlation_sets == fig1_case1.correlation_sets


def test_round_trip_generated(small_sparse, tmp_path):
    target = tmp_path / "sparse.json"
    save_network(small_sparse, target)
    loaded = load_network(target)
    assert (loaded.incidence == small_sparse.incidence).all()
    assert loaded.shared_router_links() == small_sparse.shared_router_links()


def test_dict_round_trip(fig1_case2):
    rebuilt = network_from_dict(network_to_dict(fig1_case2))
    assert rebuilt.correlation_sets == fig1_case2.correlation_sets


def test_version_check(fig1_case1):
    data = network_to_dict(fig1_case1)
    data["format_version"] = 99
    with pytest.raises(TopologyError):
        network_from_dict(data)


def test_malformed_data(fig1_case1):
    data = network_to_dict(fig1_case1)
    del data["links"][0]["asn"]
    with pytest.raises(TopologyError):
        network_from_dict(data)


def test_not_json(tmp_path):
    target = tmp_path / "junk.json"
    target.write_text("not json {")
    with pytest.raises(TopologyError):
        load_network(target)


def test_json_is_human_readable(fig1_case1, tmp_path):
    target = tmp_path / "fig1.json"
    save_network(fig1_case1, target)
    data = json.loads(target.read_text())
    assert data["format_version"] == 1
    assert len(data["links"]) == 4
