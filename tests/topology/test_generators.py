"""Tests for the BRITE-like and traceroute topology generators."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.brite import BriteConfig, build_router_internet, generate_brite_network
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


def test_brite_determinism():
    config = BriteConfig(num_ases=8, num_paths=40, num_destinations=20)
    a = generate_brite_network(config, 5)
    b = generate_brite_network(config, 5)
    assert a.num_links == b.num_links
    assert [p.links for p in a.paths] == [p.links for p in b.paths]


def test_brite_different_seeds_differ():
    config = BriteConfig(num_ases=8, num_paths=40, num_destinations=20)
    a = generate_brite_network(config, 5)
    b = generate_brite_network(config, 6)
    assert [p.links for p in a.paths] != [p.links for p in b.paths]


def test_brite_excludes_source_as_intra_links(small_brite):
    source_asn = 0
    for link in small_brite.links:
        # Inter-domain links are attributed to the entered AS, so no link
        # should belong to the source AS except inter-domain links *into* it
        # (there are none, since all paths leave the source).
        assert link.asn != source_asn or link.router_links


def test_brite_paths_are_loop_free(small_brite):
    for path in small_brite.paths:
        assert len(set(path.links)) == len(path.links)


def test_brite_no_duplicate_paths(small_brite):
    sequences = [p.links for p in small_brite.paths]
    assert len(sequences) == len(set(sequences))


def test_brite_has_correlated_pairs(small_brite):
    # The router-level substrate must induce AS-level correlations, or the
    # No-Independence scenarios cannot be built.
    assert len(small_brite.correlated_link_pairs()) > 0


def test_brite_validation():
    with pytest.raises(TopologyError):
        BriteConfig(num_ases=2).validate()
    with pytest.raises(TopologyError):
        BriteConfig(num_ases=8, as_attachment=9).validate()
    with pytest.raises(TopologyError):
        BriteConfig(routers_per_as=1).validate()
    with pytest.raises(TopologyError):
        BriteConfig(num_paths=0).validate()
    with pytest.raises(TopologyError):
        BriteConfig(source_asn=99).validate()


def test_router_internet_as_mapping():
    config = BriteConfig(num_ases=6, routers_per_as=3)
    graph, asn_of = build_router_internet(config, 1)
    assert len(asn_of) == 18
    assert set(asn_of.values()) == set(range(6))
    # Every AS's routers form a connected subgraph.
    import networkx as nx

    for asn in range(6):
        nodes = [r for r, a in asn_of.items() if a == asn]
        assert nx.is_connected(graph.subgraph(nodes))


def test_sparse_determinism():
    config = TracerouteConfig(num_probes=150, max_kept_paths=60)
    a = generate_sparse_network(config, 3)
    b = generate_sparse_network(config, 3)
    assert [p.links for p in a.paths] == [p.links for p in b.paths]


def test_sparse_campaign_discards(small_sparse):
    config = TracerouteConfig(num_probes=300, response_prob=0.85, max_kept_paths=100)
    network, campaign = generate_sparse_network(config, 1, return_campaign=True)
    # With imperfect responders a substantial share is discarded, mirroring
    # the paper's "most traceroutes ... had to be discarded".
    assert campaign.incomplete_discarded > 0
    assert campaign.discard_rate > 0.2
    assert campaign.kept == network.num_paths or campaign.kept >= network.num_paths


def test_sparse_is_rank_deficient(small_sparse):
    # The defining property of the Sparse topologies (Section 3.2): the
    # system of equations has low rank relative to the number of links.
    assert small_sparse.routing_rank() < small_sparse.num_links


def test_sparse_is_sparser_than_brite(small_brite, small_sparse):
    brite_ratio = small_brite.routing_rank() / small_brite.num_links
    sparse_ratio = small_sparse.routing_rank() / small_sparse.num_links
    assert sparse_ratio < brite_ratio


def test_sparse_validation():
    with pytest.raises(TopologyError):
        TracerouteConfig(response_prob=0.0).validate()
    with pytest.raises(TopologyError):
        TracerouteConfig(load_balance_prob=1.5).validate()
    with pytest.raises(TopologyError):
        TracerouteConfig(num_probes=0).validate()


def test_sparse_raises_when_nothing_kept():
    config = TracerouteConfig(num_probes=5, response_prob=0.01)
    with pytest.raises(TopologyError):
        generate_sparse_network(config, 0)
