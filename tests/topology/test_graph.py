"""Unit tests for the core network model (repro.topology.graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import Link, Network, Path


def test_fig1_incidence(fig1_case1):
    expected = np.array(
        [
            [True, True, False, False],  # p1 = e1 e2
            [True, False, True, False],  # p2 = e1 e3
            [False, False, True, True],  # p3 = e4 e3
        ]
    )
    assert (fig1_case1.incidence == expected).all()


def test_fig1_correlation_sets_case1(fig1_case1):
    assert fig1_case1.correlation_sets == [
        frozenset({0}),
        frozenset({1, 2}),
        frozenset({3}),
    ]


def test_fig1_correlation_sets_case2(fig1_case2):
    assert sorted(fig1_case2.correlation_sets, key=sorted) == [
        frozenset({0, 3}),
        frozenset({1, 2}),
    ]


def test_paths_covering_matches_paper_examples(fig1_case1):
    # Section 5.2: Paths({e1, e2}) = {p1, p2}, Paths({e1, e3}) = {p1, p2, p3}.
    assert fig1_case1.paths_covering([0, 1]) == frozenset({0, 1})
    assert fig1_case1.paths_covering([0, 2]) == frozenset({0, 1, 2})


def test_links_covered_matches_paper_examples(fig1_case1):
    # Section 5.2: Links({p1}) = {e1, e2}, Links({p1, p2}) = {e1, e2, e3}.
    assert fig1_case1.links_covered([0]) == frozenset({0, 1})
    assert fig1_case1.links_covered([0, 1]) == frozenset({0, 1, 2})


def test_links_covered_empty(fig1_case1):
    assert fig1_case1.links_covered([]) == frozenset()


def test_paths_covering_empty(fig1_case1):
    assert fig1_case1.paths_covering([]) == frozenset()


def test_paths_through_all(fig1_case1):
    assert fig1_case1.paths_through_all([0]) == frozenset({0, 1})
    assert fig1_case1.paths_through_all([0, 2]) == frozenset({1})
    assert fig1_case1.paths_through_all([]) == frozenset({0, 1, 2})


def test_correlation_set_of(fig1_case1):
    assert fig1_case1.correlation_set_of(1) == frozenset({1, 2})
    assert fig1_case1.correlation_set_of(0) == frozenset({0})


def test_path_lengths(fig1_case1):
    assert fig1_case1.path_lengths().tolist() == [2, 2, 2]


def test_link_degrees(fig1_case1):
    assert fig1_case1.link_degrees().tolist() == [2, 1, 2, 1]


def test_edge_links_are_last_hops(fig1_case1):
    # Last hops: e2 (p1), e3 (p2 and p3).
    assert fig1_case1.edge_links() == [1, 2]
    assert fig1_case1.core_links() == [0, 3]


def test_routing_rank(fig1_case1):
    assert fig1_case1.routing_rank() == 3


def test_path_rejects_duplicate_links():
    with pytest.raises(TopologyError):
        Path(index=0, links=(1, 2, 1))


def test_path_rejects_empty():
    with pytest.raises(TopologyError):
        Path(index=0, links=())


def test_network_rejects_out_of_order_links():
    links = [Link(index=1, src=0, dst=1)]
    with pytest.raises(TopologyError):
        Network(links, [])


def test_network_rejects_unknown_link_reference():
    links = [Link(index=0, src=0, dst=1)]
    paths = [Path(index=0, links=(3,))]
    with pytest.raises(TopologyError):
        Network(links, paths)


def test_network_rejects_out_of_order_paths():
    links = [Link(index=0, src=0, dst=1)]
    paths = [Path(index=1, links=(0,))]
    with pytest.raises(TopologyError):
        Network(links, paths)


def test_shared_router_links():
    links = [
        Link(index=0, src=0, dst=1, asn=0, router_links=frozenset({10, 11})),
        Link(index=1, src=1, dst=2, asn=0, router_links=frozenset({11, 12})),
        Link(index=2, src=2, dst=3, asn=1, router_links=frozenset({13})),
    ]
    paths = [Path(index=0, links=(0, 1, 2))]
    network = Network(links, paths)
    shared = network.shared_router_links()
    assert shared == {11: frozenset({0, 1})}
    assert network.correlated_link_pairs() == [(0, 1)]
    assert links[0].shares_router_link(links[1])
    assert not links[0].shares_router_link(links[2])


def test_describe_keys(fig1_case1):
    stats = fig1_case1.describe()
    assert stats["num_links"] == 4.0
    assert stats["num_paths"] == 3.0
    assert stats["num_correlation_sets"] == 3.0
    assert stats["routing_rank"] == 3.0
