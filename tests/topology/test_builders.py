"""Unit tests for hand-built topologies (repro.topology.builders)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.topology.builders import (
    fig1_topology,
    line_topology,
    network_from_paths,
    star_topology,
)


def test_fig1_invalid_case():
    with pytest.raises(TopologyError):
        fig1_topology(case=3)


def test_line_topology_structure():
    network = line_topology(4)
    assert network.num_links == 4
    assert network.num_paths == 1
    assert network.paths[0].links == (0, 1, 2, 3)


def test_line_topology_asns():
    network = line_topology(3, asn_of=[0, 0, 1])
    assert sorted(network.correlation_sets, key=sorted) == [
        frozenset({0, 1}),
        frozenset({2}),
    ]


def test_line_topology_rejects_bad_asn_length():
    with pytest.raises(TopologyError):
        line_topology(3, asn_of=[0, 1])


def test_line_topology_rejects_zero_links():
    with pytest.raises(TopologyError):
        line_topology(0)


def test_star_topology_counts():
    network = star_topology(3)
    assert network.num_links == 6
    # One path per ordered spoke pair.
    assert network.num_paths == 6
    assert all(len(path) == 2 for path in network.paths)


def test_star_topology_rejects_single_spoke():
    with pytest.raises(TopologyError):
        star_topology(1)


def test_network_from_paths_basic():
    network = network_from_paths([["a", "b"], ["a", "c"]])
    assert network.num_links == 3
    assert network.num_paths == 2
    # Link "a" (index 0) is shared.
    assert network.paths_covering([0]) == frozenset({0, 1})


def test_network_from_paths_asn_grouping():
    network = network_from_paths([["a", "b"], ["c"]], asn_of={"a": 5, "b": 5, "c": 9})
    assert sorted(network.correlation_sets, key=sorted) == [
        frozenset({0, 1}),
        frozenset({2}),
    ]


def test_network_from_paths_router_links():
    network = network_from_paths(
        [["a", "b"]], router_links_of={"a": [1, 2], "b": [2, 3]}
    )
    assert network.correlated_link_pairs() == [(0, 1)]


def test_network_from_paths_default_independent():
    network = network_from_paths([["a", "b", "c"]])
    assert network.correlated_link_pairs() == []
    assert len(network.correlation_sets) == 3
