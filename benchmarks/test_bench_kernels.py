"""Benchmarks for the pluggable frequency kernels and executor modes.

Two head-to-head comparisons, both at figure-4(a) scale:

* **numpy vs numba kernel** — the same ``run_figure4`` sweep executed once
  per kernel (plus a microbenchmark of the raw batched union-popcount
  call). The merged figures must be **bit-identical** — swapping kernels
  can never change a result, only its wall clock. The compiled kernel is
  expected to take the batched frequency call at least ~3x faster; the
  numba-side benchmarks skip where numba is not installed.
* **serial vs process vs thread executor** — the figure4 sweep sharded
  each way. All three merges must be bit-identical; the thread run is only
  expected to beat serial when the active kernel releases the GIL, so
  that gate additionally requires a GIL-free kernel.

Wall clock on shared CI runners is noise, so — like the runner and
streaming benchmarks — every speedup gate only *fails* when armed via
``REPRO_BENCH_STRICT`` (and, for the sharded runs, only where enough
cores are usable); otherwise the measured ratio is printed as a warning.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4
from repro.model import kernels

#: Worker shards of the pooled executor runs.
WORKERS = 4

#: Minimum expected speedup of the compiled kernel over numpy on the raw
#: batched union-popcount call (the fused loops skip the gather cube).
MIN_KERNEL_SPEEDUP = 3.0

#: Minimum expected speedup of the thread-sharded sweep over serial when
#: the active kernel releases the GIL. Kept modest: the sweep also spends
#: time in GIL-holding simulation code that threads cannot overlap.
MIN_THREAD_SPEEDUP = 1.2

_KERNEL_RUNS = {}
_EXECUTOR_RUNS = {}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _require_numba():
    kernel = kernels.get_kernel("numba")
    if not kernel.is_available():
        pytest.skip(f"numba kernel unavailable: {kernel.unavailable_reason()}")
    return kernel


def _kernel_run(name, scale):
    """Figure4 at ``scale`` under kernel ``name``: (result, seconds)."""
    if name not in _KERNEL_RUNS:
        with kernels.use_kernel(name):
            start = perf_counter()
            result = run_figure4(scale, seed=2, workers=1)
            elapsed = perf_counter() - start
        _KERNEL_RUNS[name] = (result, elapsed)
    return _KERNEL_RUNS[name]


def _executor_run(mode, scale):
    """Figure4 at ``scale`` under executor ``mode``: (result, seconds)."""
    if mode not in _EXECUTOR_RUNS:
        workers = 1 if mode == "serial" else WORKERS
        executor = "process" if mode == "serial" else mode
        start = perf_counter()
        result = run_figure4(scale, seed=2, workers=workers, executor=executor)
        elapsed = perf_counter() - start
        _EXECUTOR_RUNS[mode] = (result, elapsed)
    return _EXECUTOR_RUNS[mode]


def _assert_bit_identical(reference, other):
    """Two Figure4Results carry exactly the same bits, row by row."""
    assert set(reference.rows) == set(other.rows)
    for key, ref in reference.rows.items():
        got = other.rows[key]
        assert ref.mean_absolute_error == got.mean_absolute_error
        assert np.array_equal(ref.errors, got.errors)
        assert ref.subset_mean_absolute_error == got.subset_mean_absolute_error
    assert reference.subset_rows == other.subset_rows
    assert reference.topology_stats == other.topology_stats


def _speedup_gate(speedup, minimum, label, strict):
    """Fail when ``strict``, warn otherwise — identical message either way."""
    if speedup >= minimum:
        return
    message = f"expected >= {minimum}x {label}, measured {speedup:.2f}x"
    if strict and os.environ.get("REPRO_BENCH_STRICT"):
        pytest.fail(message)
    print(f"WARNING: {message} (non-strict run; not failing)")


@pytest.mark.benchmark(group="kernels")
def test_kernel_figure4a_numpy(benchmark, bench_scale):
    result, elapsed = benchmark.pedantic(
        lambda: _kernel_run("numpy", bench_scale), rounds=1, iterations=1
    )
    print()
    print(f"figure4 sweep, numpy kernel, serial: {elapsed:.2f}s")
    assert result.rows


@pytest.mark.benchmark(group="kernels")
def test_kernel_figure4a_numba(benchmark, bench_scale):
    _require_numba()
    result, numba_s = benchmark.pedantic(
        lambda: _kernel_run("numba", bench_scale), rounds=1, iterations=1
    )
    reference, numpy_s = _kernel_run("numpy", bench_scale)
    # Bit-identity is the invariant, asserted strict or not.
    _assert_bit_identical(reference, result)
    speedup = numpy_s / numba_s if numba_s > 0 else float("inf")
    print()
    print(
        f"figure4 sweep, numba kernel: numpy {numpy_s:.2f}s, "
        f"numba {numba_s:.2f}s, end-to-end speedup {speedup:.2f}x"
    )
    # End-to-end includes simulation and solver time the kernel cannot
    # touch, so the figure-level run is informational; the 3x contract is
    # enforced on the raw kernel call below.
    _speedup_gate(speedup, 1.0, "end-to-end speedup (numba vs numpy)", strict=True)


@pytest.mark.benchmark(group="kernels")
def test_kernel_union_popcount_speedup(benchmark, bench_scale):
    """The raw batched call: compiled fused loops vs chunked numpy gather."""
    numba = _require_numba()
    numpy_kernel = kernels.get_kernel("numpy")
    numpy_s = kernels.microbenchmark(numpy_kernel)
    numba_s = benchmark.pedantic(
        lambda: kernels.microbenchmark(numba), rounds=1, iterations=1
    )
    speedup = numpy_s / numba_s if numba_s > 0 else float("inf")
    print()
    print(
        f"union popcount microbenchmark: numpy {numpy_s * 1e3:.2f}ms, "
        f"numba {numba_s * 1e3:.2f}ms, speedup {speedup:.2f}x"
    )
    _speedup_gate(
        speedup, MIN_KERNEL_SPEEDUP, "kernel speedup (numba vs numpy)", strict=True
    )


@pytest.mark.benchmark(group="executors")
def test_executor_figure4_serial(benchmark, bench_scale):
    result, elapsed = benchmark.pedantic(
        lambda: _executor_run("serial", bench_scale), rounds=1, iterations=1
    )
    print()
    print(f"figure4 sweep, serial: {elapsed:.2f}s")
    assert result.rows


@pytest.mark.benchmark(group="executors")
def test_executor_figure4_process_workers4(benchmark, bench_scale):
    result, _ = benchmark.pedantic(
        lambda: _executor_run("process", bench_scale), rounds=1, iterations=1
    )
    reference, _ = _executor_run("serial", bench_scale)
    _assert_bit_identical(reference, result)


@pytest.mark.benchmark(group="executors")
def test_executor_figure4_thread_workers4(benchmark, bench_scale):
    result, thread_s = benchmark.pedantic(
        lambda: _executor_run("thread", bench_scale), rounds=1, iterations=1
    )
    reference, serial_s = _executor_run("serial", bench_scale)
    # Bit-identity always holds, even where threads serialise on the GIL.
    _assert_bit_identical(reference, result)
    cores = _usable_cores()
    gil_free = kernels.active_kernel().releases_gil
    speedup = serial_s / thread_s if thread_s > 0 else float("inf")
    print()
    print(
        f"figure4 sweep, {WORKERS} thread shards on {cores} core(s), "
        f"kernel {kernels.active_kernel().name!r} "
        f"(GIL-free: {gil_free}): serial {serial_s:.2f}s, "
        f"thread {thread_s:.2f}s, speedup {speedup:.2f}x"
    )
    # Threads only overlap when the kernel drops the GIL; with the numpy
    # kernel the run is correct but serialised, so no gate applies.
    _speedup_gate(
        speedup,
        MIN_THREAD_SPEEDUP,
        f"thread-shard speedup with {WORKERS} shards on {cores} cores",
        strict=cores >= WORKERS and gil_free,
    )
