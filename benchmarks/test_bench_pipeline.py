"""Benchmark: one shared-workspace trial vs three cold estimator fits.

The sweep drivers fit every registered paper estimator against the same
simulated experiment of a (topology, scenario, seed) cell. Before the
staged pipeline, each fit cold-started its own FrequencyCache — the same
Eq. 1 frequencies were recomputed up to three times per cell. The
acceptance bar here: fitting all three estimators through one
:class:`~repro.probability.pipeline.SharedFitWorkspace` must produce
**bit-identical models** to the three cold fits, and the warm trial must
not be slower (strictly faster when the gate is armed) — the redundant
frequency recomputation is gone.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.probability.base import EstimatorConfig
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import make_estimator, paper_estimator_names
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network

SEED = 2


def _experiment(scale):
    """The figure4a-style cell every estimator fits against."""
    network = generate_brite_network(scale.brite, random_state=SEED)
    scenario = build_scenario(
        network,
        ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE, non_stationary=True),
        random_state=SEED,
    )
    return run_experiment(
        scenario,
        scale.num_intervals,
        prober=PathProber(num_packets=scale.num_packets),
        random_state=SEED + 1,
    )


def _fit_all(network, observations, workspace=None):
    models = {}
    for name in paper_estimator_names():
        estimator = make_estimator(name, EstimatorConfig(seed=SEED))
        models[name] = estimator.fit(network, observations, workspace=workspace)
    return models


@pytest.mark.benchmark(group="pipeline")
def test_shared_workspace_trial_vs_cold_fits(benchmark, bench_scale):
    experiment = _experiment(bench_scale)
    network, observations = experiment.network, experiment.observations

    # Warm the seed-keyed sampled-pool memo so both arms measure only the
    # per-fit work (the pool is shared across all fits either way).
    _fit_all(network, observations)

    warm_models = benchmark.pedantic(
        lambda: _fit_all(
            network, observations, workspace=SharedFitWorkspace(observations)
        ),
        rounds=3,
        iterations=1,
    )
    warm_seconds = benchmark.stats.stats.mean

    cold_start = time.perf_counter()
    cold_models = _fit_all(network, observations)
    cold_seconds = time.perf_counter() - cold_start

    # Bit-identical models: the warm cache only re-serves values the packed
    # kernel would recompute.
    for name, cold in cold_models.items():
        warm = warm_models[name]
        assert np.array_equal(cold.link_marginals(), warm.link_marginals()), name
        assert cold._good == warm._good, name
        assert cold.report.rank == warm.report.rank, name

    kernel_cold = sum(
        model.report.frequency_cache_misses for model in cold_models.values()
    )
    kernel_warm = sum(
        model.report.frequency_cache_misses for model in warm_models.values()
    )
    print()
    print(
        f"3 cold fits: {cold_seconds:.3f}s ({kernel_cold} kernel evaluations); "
        f"shared-workspace trial: {warm_seconds:.3f}s "
        f"({kernel_warm} kernel evaluations, "
        f"{1 - kernel_warm / max(1, kernel_cold):.0%} fewer)"
    )
    per_stage = {
        name: model.report.stage_seconds for name, model in warm_models.items()
    }
    for name, stages in per_stage.items():
        summary = "  ".join(f"{s}={t * 1e3:.1f}ms" for s, t in stages.items())
        print(f"  {name:<24} {summary}")

    # The shared workspace must eliminate redundant kernel work outright.
    assert kernel_warm < kernel_cold

    # Wall clock is noisy on shared runners: the ratio gate only blocks
    # when explicitly armed, and reports otherwise.
    if warm_seconds > cold_seconds:
        message = (
            f"shared-workspace trial ({warm_seconds:.3f}s) slower than "
            f"3 cold fits ({cold_seconds:.3f}s)"
        )
        if os.environ.get("REPRO_BENCH_STRICT"):
            pytest.fail(message)
        print(f"WARNING: {message} (non-strict run; not failing)")
