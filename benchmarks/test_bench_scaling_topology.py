"""Internet-scale sparse-vs-dense estimation path benchmark.

Runs the ``scaling-topology`` study (ROADMAP item 3): the same power-law
AS topology is built and fitted through the dense structures and through
the sparse path (CSR adjacency, CSR route table, sparse equation arenas)
at each scale's node counts.

Bit-identity between the two modes is asserted *unconditionally* — it is
a correctness contract, not a performance expectation. The performance
gates (>= ``MEMORY_RATIO_FLOOR`` structure-memory reduction at every
size, sparse wall time within ``TIME_SLACK`` of dense at the smallest
size) *fail* only when armed via ``REPRO_BENCH_STRICT``; otherwise the
measured numbers are printed with a warning, because shared CI runners
make wall-clock flaky and the committed gate should never be.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.scaling_topology import run_scaling_topology

#: Dense structure bytes / sparse structure bytes must clear this at
#: every measured size (the ISSUE's ">= 3x lighter" acceptance bar).
MEMORY_RATIO_FLOOR = 3.0

#: Sparse (build + fit) wall time may exceed dense by at most this
#: factor at the smallest size — "never slower", with timing-noise slack
#: (the study runs under tracemalloc, which taxes allocation-heavy code).
TIME_SLACK = 1.25


@pytest.mark.benchmark(group="scaling-topology")
def test_scaling_topology_sparse_vs_dense(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_scaling_topology(
            bench_scale, seed=17, workers=1, executor="thread"
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("Sparse vs dense internet-scale estimation path")
    print(result.to_table())
    ratios = result.memory_ratios()
    print(
        "dense/sparse structure-memory ratio: "
        + ", ".join(f"{size}: {ratio:.1f}x" for size, ratio in sorted(ratios.items()))
    )

    # Correctness contract: identical routes and estimates in both modes.
    assert result.bit_identical(), (
        "sparse and dense modes diverged — the sparse path must be "
        "bit-identical, see repro/experiments/scaling_topology.py"
    )

    # Report-only context for compare_baseline.py: the process peak RSS
    # after the largest cell, in MB.
    benchmark.extra_info["peak_rss_mb"] = round(
        max(row.rss_bytes for row in result.rows) / 1e6, 1
    )

    problems = []
    for size, ratio in sorted(ratios.items()):
        if ratio < MEMORY_RATIO_FLOOR:
            problems.append(
                f"structure-memory ratio at {size} nodes is {ratio:.2f}x "
                f"(< {MEMORY_RATIO_FLOOR:.1f}x)"
            )
    smallest = min(result.sizes())
    dense = result.cell(smallest, "dense")
    sparse = result.cell(smallest, "sparse")
    if dense is not None and sparse is not None:
        dense_s = dense.build_seconds + dense.fit_seconds
        sparse_s = sparse.build_seconds + sparse.fit_seconds
        if sparse_s > dense_s * TIME_SLACK:
            problems.append(
                f"sparse mode slower at {smallest} nodes: "
                f"{sparse_s:.2f}s vs dense {dense_s:.2f}s "
                f"(> {TIME_SLACK:.2f}x slack)"
            )
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert not problems, "; ".join(problems)
    else:
        for problem in problems:
            print(f"WARNING (unarmed gate): {problem}")
