"""Benchmarks regenerating Fig. 3: Boolean-inference accuracy.

Paper expectation (Section 3.2): all three algorithms do well under Random
congestion on the dense Brite topology; Sparsity degrades under
Concentrated congestion; Bayesian-Independence under No Independence;
Bayesian-Correlation under No Stationarity; and **all** algorithms suffer
on the Sparse topology (Bayesian-Independence keeps a high detection rate
only by aggressively marking links, i.e. at a high false-positive cost).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import run_figure3

_RESULT_CACHE = {}


def _result(scale, seed=1):
    key = (scale.name, seed)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = run_figure3(scale, seed=seed)
    return _RESULT_CACHE[key]


@pytest.mark.benchmark(group="figure3")
def test_figure3a_detection_rate(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 3(a) - detection rate (paper: ~0.9 easy cases, lower when")
    print("an algorithm's assumption breaks; everything suffers on Sparse)")
    print(result.to_table("detection"))
    for scenario in ("Random Congestion", "Sparse Topology"):
        for algorithm in ("Sparsity", "Bayesian-Independence", "Bayesian-Correlation"):
            assert 0.0 <= result.detection(scenario, algorithm) <= 1.0
    # Shape check: the Sparse topology is harder than Random/Brite for the
    # cover-style algorithms.
    assert result.detection("Sparse Topology", "Sparsity") <= result.detection(
        "Random Congestion", "Bayesian-Independence"
    )


@pytest.mark.benchmark(group="figure3")
def test_figure3b_false_positive_rate(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 3(b) - false-positive rate (paper: small in easy cases;")
    print("rises sharply on the Sparse topology)")
    print(result.to_table("fp"))
    # Shape check: sparse topologies push false positives up.
    sparse_fp = max(
        result.false_positives("Sparse Topology", algorithm)
        for algorithm in (
            "Sparsity",
            "Bayesian-Independence",
            "Bayesian-Correlation",
        )
    )
    easy_fp = min(
        result.false_positives("No Independence", algorithm)
        for algorithm in (
            "Sparsity",
            "Bayesian-Independence",
            "Bayesian-Correlation",
        )
    )
    assert sparse_fp >= easy_fp
