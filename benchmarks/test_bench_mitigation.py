"""Benchmark for the closed-loop mitigation sweep.

Three scenario families run the full estimate → mitigate → re-simulate →
re-estimate loop with every registered policy against the Independence
estimator. Beyond the timing, the run checks the layer's core promises:
the no-op control arm reproduces the pre state exactly (seed-paired
re-simulation), and no policy leaves the network worse than doing
nothing. The stronger claim — some policy strictly beats no-op in every
family — holds on the committed fixtures but depends on the sampled
congestion draw, so it only gates when ``REPRO_BENCH_STRICT`` is set.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.mitigation import run_mitigation

#: Scenario families the benchmark sweeps (3 of the 4 defaults; the
#: concentrated family behaves like random at benchmark scale).
SCENARIOS = ("random", "gravity", "cascade")


@pytest.mark.benchmark(group="mitigation")
def test_mitigation_closed_loop_sweep(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_mitigation(
            bench_scale,
            seed=13,
            scenarios=list(SCENARIOS),
            estimators=["Independence"],
            workers=1,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for scenario in result.scenarios():
        print(f"brite / {scenario} — residual path-congestion rate")
        print(result.to_table("brite", scenario))
        print()

    strict_wins = 0
    for scenario in result.scenarios():
        noop = result.rows[("brite", scenario, "noop", "Independence")]
        assert noop["reduction"] == 0.0
        assert noop["paths_disturbed"] == 0
        residuals = {
            policy: result.residual("brite", scenario, policy, "Independence")
            for policy in result.policies()
        }
        # Acting must never be worse than doing nothing.
        best = min(v for k, v in residuals.items() if k != "noop")
        assert best <= residuals["noop"]
        if best < residuals["noop"]:
            strict_wins += 1
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert strict_wins == len(result.scenarios()), (
            f"mitigation beat no-op in only {strict_wins}/"
            f"{len(result.scenarios())} scenario families"
        )
    elif strict_wins < len(result.scenarios()):
        print(
            f"WARNING: mitigation strictly beat no-op in {strict_wins}/"
            f"{len(result.scenarios())} families (non-strict run; not failing)"
        )
