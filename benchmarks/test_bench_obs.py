"""Overhead benchmarks for the :mod:`repro.obs` telemetry layer.

The telemetry contract is that instrumentation is effectively free when
``REPRO_OBS=off``: every metric update hides behind a single
``metrics_enabled()`` branch and spans pay only the two ``perf_counter``
calls the stage-timing code already paid before the layer existed. These
benchmarks quantify that claim at figure-4(a) scale:

* **off vs metrics vs trace** — the same ``run_figure4`` sweep executed
  once per telemetry mode. All three merges must be **bit-identical**
  (telemetry can never change a result, only observe it); the mode
  ratios are recorded so ``BENCH_baseline.json`` tracks the cost of
  each collection level PR over PR.
* **off-mode dispatch cost** — tight-loop microbenchmarks of the three
  hot-path operations (guarded counter update, local-counter bump, span
  enter/exit), projected onto the instrumented-operation counts of a
  real sweep. The projected overhead must stay under
  ``MAX_OFF_OVERHEAD`` (2%) of the sweep's wall clock.

The trace-mode run appends its span events to ``bench_telemetry.jsonl``
in the working directory; CI feeds that file to
``compare_baseline.py --telemetry`` so a timing regression names the
spans whose self-time grew. Wall clock on shared runners is noise, so —
like every other gate in this directory — the overhead gate only
*fails* when armed via ``REPRO_BENCH_STRICT``; otherwise the measured
fraction is printed as a warning.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from time import perf_counter
from urllib.request import urlopen

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4
from repro.obs import (
    bump_local,
    capture_metrics,
    counter,
    load_events,
    local_counters,
    span,
    use_mode,
    validate_events,
)

#: Ceiling on the projected off-mode overhead fraction of the figure4a
#: sweep (the ISSUE's "<2% vs no-import baseline" acceptance gate).
MAX_OFF_OVERHEAD = 0.02

#: Ceiling on the serving overhead: figure4a under a live TelemetryServer
#: (HTTP scraper polling /metrics) plus the resource sampler, vs the
#: plain metrics-mode run it snapshots.
MAX_SERVE_OVERHEAD = 0.02

#: Aggressive cadences for the serve benchmark — far hotter than any
#: real deployment (Prometheus default scrape is 15s, sampler 5s), so
#: the gate bounds a pessimistic serving load.
SERVE_SAMPLE_INTERVAL = 0.05
SERVE_SCRAPE_INTERVAL = 0.1

#: Tight-loop iterations for the dispatch-cost microbenchmarks.
DISPATCH_LOOPS = 200_000

#: Span-event sink of the trace-mode sweep; CI uploads it and feeds it
#: to ``compare_baseline.py --telemetry``.
TELEMETRY_PATH = Path("bench_telemetry.jsonl")

_MODE_RUNS = {}

_PROBE = counter(
    "repro_bench_obs_probe_total",
    "Dispatch-cost probe counter for the obs overhead benchmarks.",
)


def _mode_run(mode_name, scale):
    """Figure4 at ``scale`` under telemetry mode: (result, seconds, extra).

    ``extra`` is the metrics snapshot (mode ``metrics``) or the span
    event list (mode ``trace``); ``None`` for ``off``.
    """
    if mode_name not in _MODE_RUNS:
        trace_path = TELEMETRY_PATH if mode_name == "trace" else None
        if trace_path is not None and trace_path.exists():
            trace_path.unlink()
        with use_mode(mode_name, trace_path):
            with capture_metrics() as captured:
                start = perf_counter()
                result = run_figure4(scale, seed=2, workers=1)
                elapsed = perf_counter() - start
        if mode_name == "metrics":
            extra = captured.snapshot()
        elif mode_name == "trace":
            from repro.obs import flush

            flush()
            extra = load_events(trace_path)
        else:
            extra = None
        _MODE_RUNS[mode_name] = (result, elapsed, extra)
    return _MODE_RUNS[mode_name]


def _serve_run(scale):
    """Figure4 under metrics mode with live serving: (result, s, stats).

    A TelemetryServer snapshots the run's registry while a background
    scraper polls ``/metrics`` every ``SERVE_SCRAPE_INTERVAL`` seconds
    and the resource sampler ticks every ``SERVE_SAMPLE_INTERVAL`` —
    both far hotter than production cadences. ``stats`` reports the
    scrape count and the last Prometheus payload.
    """
    if "serve" not in _MODE_RUNS:
        from repro.obs.serve import TelemetryServer

        stop = threading.Event()
        stats = {"scrapes": 0, "last_payload": ""}

        def _scrape_loop(url):
            while not stop.wait(SERVE_SCRAPE_INTERVAL):
                try:
                    with urlopen(f"{url}/metrics", timeout=1.0) as response:
                        stats["last_payload"] = response.read().decode("utf-8")
                    stats["scrapes"] += 1
                except OSError:
                    pass

        with use_mode("metrics"):
            with capture_metrics() as captured:
                server = TelemetryServer(
                    registry_fn=lambda: captured,
                    sample_interval=SERVE_SAMPLE_INTERVAL,
                ).start()
                scraper = threading.Thread(
                    target=_scrape_loop, args=(server.url,), daemon=True
                )
                scraper.start()
                try:
                    start = perf_counter()
                    result = run_figure4(scale, seed=2, workers=1)
                    elapsed = perf_counter() - start
                finally:
                    stop.set()
                    scraper.join(timeout=2.0)
                    stats["samples"] = (
                        server.sampler.samples if server.sampler else 0
                    )
                    server.stop()
        _MODE_RUNS["serve"] = (result, elapsed, stats)
    return _MODE_RUNS["serve"]


def _assert_bit_identical(reference, other):
    """Two Figure4Results carry exactly the same bits, row by row."""
    assert set(reference.rows) == set(other.rows)
    for key, ref in reference.rows.items():
        got = other.rows[key]
        assert ref.mean_absolute_error == got.mean_absolute_error
        assert np.array_equal(ref.errors, got.errors)
    assert reference.subset_rows == other.subset_rows


def _overhead_gate(fraction, maximum, label):
    """Fail when ``REPRO_BENCH_STRICT`` is armed, warn otherwise."""
    if fraction <= maximum:
        return
    message = f"expected <= {maximum:.1%} {label}, measured {fraction:.2%}"
    if os.environ.get("REPRO_BENCH_STRICT"):
        pytest.fail(message)
    print(f"WARNING: {message} (non-strict run; not failing)")


def _counter_total(snapshot, name):
    return sum(
        value
        for family, _labels, value in snapshot["counters"]
        if family == name
    )


@pytest.mark.benchmark(group="obs")
def test_obs_off_figure4a(benchmark, bench_scale):
    """The reference run: instrumented code with telemetry off."""
    result, elapsed, _ = benchmark.pedantic(
        lambda: _mode_run("off", bench_scale), rounds=1, iterations=1
    )
    print()
    print(f"figure4a sweep, REPRO_OBS=off: {elapsed:.2f}s")
    assert result.rows


@pytest.mark.benchmark(group="obs")
def test_obs_metrics_figure4a(benchmark, bench_scale):
    """Metrics collection on: same bits, measured overhead vs off."""
    result, metrics_s, snapshot = benchmark.pedantic(
        lambda: _mode_run("metrics", bench_scale), rounds=1, iterations=1
    )
    reference, off_s, _ = _mode_run("off", bench_scale)
    _assert_bit_identical(reference, result)
    ratio = metrics_s / off_s if off_s > 0 else float("inf")
    lookups = _counter_total(
        snapshot, "repro_frequency_cache_hits_total"
    ) + _counter_total(snapshot, "repro_frequency_cache_misses_total")
    print()
    print(
        f"figure4a sweep, REPRO_OBS=metrics: off {off_s:.2f}s, "
        f"metrics {metrics_s:.2f}s ({ratio:.3f}x), "
        f"{lookups} cache lookups counted"
    )
    assert lookups > 0


@pytest.mark.benchmark(group="obs")
def test_obs_trace_figure4a(benchmark, bench_scale):
    """Full tracing on: same bits, schema-valid span events on disk."""
    result, trace_s, events = benchmark.pedantic(
        lambda: _mode_run("trace", bench_scale), rounds=1, iterations=1
    )
    reference, off_s, _ = _mode_run("off", bench_scale)
    _assert_bit_identical(reference, result)
    assert validate_events(events) == []
    ratio = trace_s / off_s if off_s > 0 else float("inf")
    print()
    print(
        f"figure4a sweep, REPRO_OBS=trace: off {off_s:.2f}s, "
        f"trace {trace_s:.2f}s ({ratio:.3f}x), "
        f"{len(events)} events -> {TELEMETRY_PATH}"
    )


@pytest.mark.benchmark(group="obs")
def test_obs_serve_figure4a(benchmark, bench_scale):
    """Live /metrics serving + resource sampler: same bits, <2% overhead.

    Compared against the plain metrics-mode run — serving implies
    metrics collection, so the delta isolates exactly what the HTTP
    exporter and the sampler add on top.
    """
    result, serve_s, stats = benchmark.pedantic(
        lambda: _serve_run(bench_scale), rounds=1, iterations=1
    )
    reference, metrics_s, _ = _mode_run("metrics", bench_scale)
    _assert_bit_identical(reference, result)
    assert stats["scrapes"] > 0, "scraper never reached /metrics"
    assert stats["samples"] > 0, "resource sampler never ticked"
    assert "repro_process_resident_memory_bytes" in stats["last_payload"]
    fraction = max(0.0, serve_s / metrics_s - 1.0) if metrics_s > 0 else 0.0
    print()
    print(
        f"figure4a sweep, serving: metrics {metrics_s:.2f}s, "
        f"serving {serve_s:.2f}s (+{fraction:.2%}), "
        f"{stats['scrapes']} scrapes, {stats['samples']} resource samples"
    )
    _overhead_gate(
        fraction,
        MAX_SERVE_OVERHEAD,
        "serving+sampler overhead on the figure4a sweep",
    )


@pytest.mark.benchmark(group="obs")
def test_obs_off_dispatch_cost(benchmark, bench_scale):
    """Project tight-loop off-mode dispatch cost onto a real sweep.

    The sweep's instrumented-operation counts come from the metrics-mode
    run (every guarded update that off-mode turns into a bare branch);
    its span count from the trace-mode run. Multiplying each by the
    measured per-operation cost bounds what ``REPRO_OBS=off`` can add
    to the uninstrumented wall clock.
    """
    _, _, snapshot = _mode_run("metrics", bench_scale)
    _, off_s, _ = _mode_run("off", bench_scale)
    _, _, events = _mode_run("trace", bench_scale)

    def _measure():
        with use_mode("off"):
            start = perf_counter()
            for _ in range(DISPATCH_LOOPS):
                _PROBE.inc()
            counter_s = (perf_counter() - start) / DISPATCH_LOOPS
            with local_counters():
                start = perf_counter()
                for _ in range(DISPATCH_LOOPS):
                    bump_local("bench.probe")
                local_s = (perf_counter() - start) / DISPATCH_LOOPS
            start = perf_counter()
            for _ in range(DISPATCH_LOOPS):
                with span("bench.probe"):
                    pass
            span_s = (perf_counter() - start) / DISPATCH_LOOPS
        return counter_s, local_s, span_s

    counter_s, local_s, span_s = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    # Guarded registry updates a metrics run performed (off turns each
    # into one failed branch), cache-local bumps (always on), and spans.
    # Counter *values* over-count the number of ``inc`` call sites for
    # batched bumps, which only makes the projection more conservative;
    # the words counters count gathered words, so their call count is
    # the kernel-calls value instead.
    guarded_ops = sum(
        value
        for name, _, value in snapshot["counters"]
        if not name.startswith("repro_kernel_words")
    )
    guarded_ops += _counter_total(snapshot, "repro_kernel_calls_total")
    guarded_ops += sum(
        sum(hist["counts"]) for _, _, hist in snapshot["histograms"]
    )
    local_ops = _counter_total(
        snapshot, "repro_frequency_cache_hits_total"
    ) + _counter_total(snapshot, "repro_frequency_cache_misses_total")
    span_ops = len(events)
    projected = (
        guarded_ops * counter_s + local_ops * local_s + span_ops * span_s
    )
    fraction = projected / off_s if off_s > 0 else 0.0
    print()
    print(
        f"off-mode dispatch: counter {counter_s * 1e9:.0f}ns, "
        f"local bump {local_s * 1e9:.0f}ns, span {span_s * 1e9:.0f}ns"
    )
    print(
        f"projected off-mode overhead: {guarded_ops} guarded + "
        f"{local_ops} local + {span_ops} spans = {projected * 1e3:.2f}ms "
        f"of {off_s:.2f}s ({fraction:.3%})"
    )
    _overhead_gate(
        fraction, MAX_OFF_OVERHEAD, "off-mode overhead on the figure4a sweep"
    )
