"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures at the
``small`` experiment scale (structural properties preserved, laptop-sized)
and prints the same rows/series the paper reports, annotated with the
paper's qualitative expectation. Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_SCALE=paper`` for paper-sized instances (much slower).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import scale_by_name


@pytest.fixture(scope="session")
def bench_scale():
    """The experiment scale used by every benchmark."""
    return scale_by_name(os.environ.get("REPRO_BENCH_SCALE", "small"))
