"""Benchmark regenerating Table 2: the assumption/condition matrix.

This is a static artefact of the paper; the benchmark renders it and
cross-checks it against the *behaviour* of the implementations (e.g. the
Independence estimator really factorises joints; Correlation-complete
really reports Identifiability++ failures).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.reporting import format_table
from repro.model.assumptions import TABLE2_MATRIX, table2_rows
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.independence import IndependenceEstimator
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.probing import oracle_path_status
from repro.topology.builders import fig1_topology


def _behavioural_check() -> str:
    """Exercise the assumption differences on the Fig. 1 examples."""
    model = CongestionModel(4, [Driver(0.3, frozenset({1, 2}))])
    states = model.sample(4000, np.random.default_rng(0))
    case1 = fig1_topology(1)
    observations = oracle_path_status(case1, states)
    config = EstimatorConfig(requested_subset_size=2, pruning_tolerance=0.0)

    independence = IndependenceEstimator(config).fit(case1, observations)
    complete = CorrelationCompleteEstimator(config).fit(case1, observations)
    lines = [
        "behavioural cross-check (Fig. 1, e2/e3 perfectly correlated):",
        f"  truth            P(e2,e3 good) = {model.prob_all_good([1, 2]):.3f}",
        f"  Independence     P(e2,e3 good) = {independence.prob_all_good([1, 2]):.3f}"
        "  (factorised -> biased)",
        f"  Corr-complete    P(e2,e3 good) = {complete.prob_all_good([1, 2]):.3f}"
        "  (joint unknown -> accurate)",
    ]
    case2 = fig1_topology(2)
    observations2 = oracle_path_status(case2, states)
    complete2 = CorrelationCompleteEstimator(config).fit(case2, observations2)
    lines.append(
        "  Case 2 Identifiability++ failure detected: "
        f"{not complete2.is_identifiable([1, 2])}"
    )
    return "\n".join(lines)


@pytest.mark.benchmark(group="table2")
def test_table2_assumption_matrix(benchmark):
    check = benchmark.pedantic(_behavioural_check, rounds=1, iterations=1)
    print()
    print("Table 2 - sources of inaccuracy per algorithm")
    columns = list(TABLE2_MATRIX)
    rows = [
        [label, *("X" if checked[column] else "" for column in columns)]
        for label, checked in table2_rows()
    ]
    print(format_table(["Source", *columns], rows))
    print(check)
    assert "accurate" in check
