"""Benchmark: sustained streaming ingest + incremental refit throughput.

The acceptance bar for the streaming subsystem: a figure4a-scale scenario
(the Brite topology and horizon the accuracy benchmarks run on) must
stream through the engine — ring append, stride-boundary refits with the
warm frequency workload, alert evaluation — at least as fast as the same
horizon is estimated offline, with refits amortised: every refit touches
exactly one window, never the full horizon.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import WindowedEstimator
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.streaming import AlertManager, AlertPolicy, StreamingEstimator
from repro.topology.brite import generate_brite_network
from repro.util.rng import derive_rng

#: Window/stride of the streamed monitor (overlapping windows: the warm
#: workload's worst case is also its best showcase).
WINDOW = 128
STRIDE = 64
CHUNK = 16


def _stream_setup(scale, seed=2):
    """A figure4a-style scenario pre-measured into a dense round stream."""
    network = generate_brite_network(scale.brite, random_state=seed)
    scenario = build_scenario(
        network,
        ScenarioConfig(kind=ScenarioKind.RANDOM, non_stationary=True),
        random_state=derive_rng(seed, 1),
    )
    states = scenario.ground_truth.sample(scale.num_intervals, derive_rng(seed, 2))
    prober = PathProber(num_packets=scale.num_packets)
    observations = prober.observe(network, states, derive_rng(seed, 3))
    return network, observations.matrix


def _drive(network, dense):
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(seed=2)),
        window=WINDOW,
        stride=STRIDE,
        alert_manager=AlertManager(network, AlertPolicy()),
    )
    for start in range(0, dense.shape[0], CHUNK):
        engine.ingest(dense[start : start + CHUNK])
    return engine


@pytest.mark.benchmark(group="streaming")
def test_streaming_ingest_throughput(benchmark, bench_scale):
    network, dense = _stream_setup(bench_scale)
    total = dense.shape[0]

    engine = benchmark.pedantic(lambda: _drive(network, dense), rounds=1, iterations=1)
    streaming_seconds = benchmark.stats.stats.mean
    streaming_rate = total / streaming_seconds

    # Offline reference: the same horizon, same window geometry, fitted in
    # one batch pass — the figure4a-scale ingest rate to sustain.
    offline_start = time.perf_counter()
    offline = WindowedEstimator(
        CorrelationCompleteEstimator(EstimatorConfig(seed=2)),
        window=WINDOW,
        stride=STRIDE,
    ).fit(network, ObservationMatrix(dense))
    offline_seconds = time.perf_counter() - offline_start
    offline_rate = total / offline_seconds

    print()
    print(
        f"streaming: {total} rounds in {streaming_seconds:.3f}s "
        f"({streaming_rate:.0f} intervals/s, {engine.refits} refits, "
        f"{len(engine.alerts)} alerts)"
    )
    print(
        f"offline reference: {offline_seconds:.3f}s "
        f"({offline_rate:.0f} intervals/s, {len(offline.windows)} windows)"
    )
    print(
        f"frequency cache: {engine.cache_hits} hits / "
        f"{engine.cache_misses} misses "
        f"({engine.cache_hits / max(1, engine.cache_hits + engine.cache_misses):.0%} hit rate)"
    )

    # Same estimates as the offline pass (spot-check: identical spans and
    # matching refit count — the full bitwise equivalence suite lives in
    # tests/streaming/).
    assert engine.timeline.window_spans() == offline.window_spans()

    # Refits amortised: one fit per completed stride window, each over
    # exactly `WINDOW` intervals — no full-horizon recompute per round.
    expected_windows = (total - WINDOW) // STRIDE + 1
    assert engine.refits + engine.skipped_windows == expected_windows
    assert all(stop - start == WINDOW for start, stop in engine.timeline.window_spans())
    # The warm workload carries across overlapping windows.
    assert engine.cache_hits > engine.cache_misses

    # Sustained ingest at least at the offline figure4a-scale rate. Wall
    # clock on shared CI runners is noise, so the ratio gate only blocks
    # when explicitly armed (set REPRO_BENCH_STRICT=1 locally / in the
    # non-blocking perf job); everywhere else it reports.
    if streaming_rate < 0.7 * offline_rate:
        message = (
            f"streaming rate {streaming_rate:.0f}/s fell below 0.7x the "
            f"offline rate {offline_rate:.0f}/s"
        )
        if os.environ.get("REPRO_BENCH_STRICT"):
            pytest.fail(message)
        print(f"WARNING: {message} (non-strict run; not failing)")
