"""Benchmarks for the parallel campaign runner.

The same figure4-scale sweep — Fig. 4's (topology, scenario, estimator)
grid replicated across three master seeds, 54 trials — is executed twice:
serially (``workers=1``) and process-sharded over 4 workers. Two things
are measured:

* the merged results must be **bit-identical** between the two runs (the
  runner's core guarantee, checked here at full benchmark scale);
* the wall-clock ratio serial/parallel is the runner's speedup. On a
  machine with >= 4 usable cores the sharded run is expected to be at
  least ~2.5x faster (the sweep has 18 independent shard groups, none
  dominant); the assertion is gated on the host's core count so 1-2 core
  CI runners still record both timings without failing.
"""

from __future__ import annotations

import os
from dataclasses import replace
from time import perf_counter

import numpy as np
import pytest

from repro.experiments.figure4 import figure4_specs, figure4_trial, merge_figure4
from repro.runner import run_trials

#: Master seeds of the sweep replicates (chosen for balanced instances).
SWEEP_SEEDS = (3, 7, 11)

#: Worker processes of the sharded run.
WORKERS = 4

#: Minimum speedup expected of the sharded run on a >= 4-core host. Kept
#: a little under the ~3x ideal (18 groups over 4 shards) to absorb pool
#: start-up and shared-cache effects on busy CI runners.
MIN_SPEEDUP = 2.5

_RUNS = {}


def _sweep_specs(scale):
    """The multi-seed figure4 sweep: one spec list, reindexed globally."""
    specs = []
    for seed in SWEEP_SEEDS:
        batch = figure4_specs(scale, seed)
        offset = len(specs)
        specs.extend(replace(spec, index=offset + i) for i, spec in enumerate(batch))
    return specs


def _run_sweep(scale, workers):
    """Run the sweep, recording results and wall time per worker count."""
    specs = _sweep_specs(scale)
    start = perf_counter()
    results = run_trials(figure4_trial, specs, workers=workers)
    elapsed = perf_counter() - start
    _RUNS[workers] = (results, elapsed)
    return results


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _merged_replicates(results):
    """Merge each seed's slice of the sweep into its Figure4Result."""
    per_replicate = len(results) // len(SWEEP_SEEDS)
    return [
        merge_figure4(results[i * per_replicate : (i + 1) * per_replicate])
        for i in range(len(SWEEP_SEEDS))
    ]


@pytest.mark.benchmark(group="runner")
def test_runner_figure4_sweep_serial(benchmark, bench_scale):
    results = benchmark.pedantic(
        lambda: _run_sweep(bench_scale, 1), rounds=1, iterations=1
    )
    print()
    print(
        f"figure4 sweep, {len(SWEEP_SEEDS)} seeds x "
        f"{len(results) // len(SWEEP_SEEDS)} trials, serial"
    )
    assert len(results) == 18 * len(SWEEP_SEEDS)
    for figure in _merged_replicates(results):
        assert len(figure.rows) == 18


@pytest.mark.benchmark(group="runner")
def test_runner_figure4_sweep_workers4(benchmark, bench_scale):
    results = benchmark.pedantic(
        lambda: _run_sweep(bench_scale, WORKERS), rounds=1, iterations=1
    )
    assert len(results) == 18 * len(SWEEP_SEEDS)
    # Deterministic merge: the sharded sweep reproduces the serial one bit
    # for bit. Normally the serial benchmark (earlier in this file) already
    # populated the cache; under pytest-xdist the two tests may run in
    # different processes, so compute the reference on demand.
    if 1 not in _RUNS:
        _run_sweep(bench_scale, 1)
    serial_results, serial_s = _RUNS[1]
    parallel = _merged_replicates(results)
    for serial_figure, parallel_figure in zip(
        _merged_replicates(serial_results), parallel
    ):
        assert set(serial_figure.rows) == set(parallel_figure.rows)
        for key, serial_metrics in serial_figure.rows.items():
            parallel_metrics = parallel_figure.rows[key]
            assert (
                serial_metrics.mean_absolute_error
                == parallel_metrics.mean_absolute_error
            )
            assert np.array_equal(serial_metrics.errors, parallel_metrics.errors)
        assert serial_figure.subset_rows == parallel_figure.subset_rows
    _, parallel_s = _RUNS[WORKERS]
    cores = _usable_cores()
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print()
    print(
        f"figure4 sweep sharded over {WORKERS} workers on {cores} core(s): "
        f"serial {serial_s:.2f}s, parallel {parallel_s:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    # Wall clock on shared CI runners is noise (the tier-1 job also runs
    # this file under pytest-xdist, with other workers saturating the same
    # cores), so — like the streaming-throughput benchmark — the speedup
    # gate only blocks when explicitly armed via REPRO_BENCH_STRICT, and
    # only where >= WORKERS cores are usable at all.
    if speedup < MIN_SPEEDUP:
        message = (
            f"expected >= {MIN_SPEEDUP}x speedup with {WORKERS} workers "
            f"on {cores} cores, measured {speedup:.2f}x"
        )
        if cores >= WORKERS and os.environ.get("REPRO_BENCH_STRICT"):
            pytest.fail(message)
        print(f"WARNING: {message} (non-strict run; not failing)")
