"""Ablation benchmark: what each solve refinement buys.

DESIGN.md §5 lists the finite-sample refinements applied to the paper's
Algorithm 1; this benchmark quantifies each by toggling it off on the
No-Independence scenario (the hardest stationary case) on both topologies.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.ablation import run_ablation


@pytest.mark.benchmark(group="ablation")
def test_correlation_complete_ablation(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_ablation(bench_scale, seed=5), rounds=1, iterations=1
    )
    print()
    print("Correlation-complete ablation - mean abs link error, No Independence")
    print(result.to_table())
    for key, value in result.errors.items():
        assert not math.isnan(value)
        assert 0.0 <= value <= 1.0
    # The full configuration should not be substantially worse than any
    # ablated variant on the sparse topology (where the refinements matter).
    full = result.errors[("full", "sparse")]
    for (label, topology), value in result.errors.items():
        if topology == "sparse":
            assert full <= value + 0.05, f"full config worse than {label}"
