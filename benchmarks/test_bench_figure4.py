"""Benchmarks regenerating Fig. 4: Probability Computation accuracy.

Paper expectation (Section 5.4): on Brite all estimators do well under
Random/Concentrated congestion while Independence roughly doubles its error
under No Independence; on Sparse topologies Independence and the
Correlation-heuristic degrade (Independence up to ~3x worse than
Correlation-complete under No Independence); Correlation-complete's CDF
dominates; and the correlation-subset probabilities are computed with a
mean absolute error of ~0.1 or less.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import ESTIMATOR_ORDER, run_figure4

_RESULT_CACHE = {}


def _result(scale, seed=2):
    key = (scale.name, seed)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = run_figure4(scale, seed=seed)
    return _RESULT_CACHE[key]


@pytest.mark.benchmark(group="figure4")
def test_figure4a_brite_link_error(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 4(a) - mean abs error of link congestion probability, Brite")
    print("(paper: all <= 0.07; Independence ~2x worse under No Independence)")
    print(result.to_table("brite"))
    # Shape: Correlation-complete is at least as accurate as Independence
    # under link correlations.
    assert result.mean_error(
        "brite", "No Independence", "Correlation-complete"
    ) <= result.mean_error("brite", "No Independence", "Independence") + 0.01


@pytest.mark.benchmark(group="figure4")
def test_figure4b_sparse_link_error(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 4(b) - mean abs error, Sparse topologies")
    print("(paper: Independence/heuristic degrade; Correlation-complete wins)")
    print(result.to_table("sparse"))
    complete = result.mean_error("sparse", "No Independence", "Correlation-complete")
    independence = result.mean_error("sparse", "No Independence", "Independence")
    assert complete <= independence + 0.01


@pytest.mark.benchmark(group="figure4")
def test_figure4c_error_cdf(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 4(c) - CDF of abs error, No Independence, Sparse")
    print("(paper: Correlation-complete <0.1 error for ~80% of links)")
    coverage = {}
    for estimator in ESTIMATOR_ORDER:
        grid, cdf = result.cdf("sparse", "No Independence", estimator, points=11)
        series = "  ".join(f"{x:.1f}:{y:.2f}" for x, y in zip(grid, cdf))
        print(f"  {estimator:<22} {series}")
        coverage[estimator] = cdf[1]  # fraction of links with error <= 0.1
    assert coverage["Correlation-complete"] >= 0.6
    assert (coverage["Correlation-complete"] >= coverage["Independence"] - 0.05)


@pytest.mark.benchmark(group="figure4")
def test_figure4d_subset_error(benchmark, bench_scale):
    result = benchmark.pedantic(lambda: _result(bench_scale), rounds=1, iterations=1)
    print()
    print("Figure 4(d) - Correlation-complete: links vs correlation subsets")
    print("(paper: subset probabilities accurate, mean abs error <= ~0.1)")
    print(result.to_subset_table())
    for topology, (link_error, subset_error) in result.subset_rows.items():
        assert link_error <= 0.2
        if subset_error is not None:
            assert subset_error <= 0.12
