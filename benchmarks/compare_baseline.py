#!/usr/bin/env python
"""Diff a fresh benchmark run against the committed BENCH_baseline.json.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=bench_current.json
    python benchmarks/compare_baseline.py bench_current.json

    # refresh the committed snapshot from a fresh run
    python benchmarks/compare_baseline.py bench_current.json --update

Prints a per-benchmark table of baseline vs current mean times and exits
non-zero when any benchmark regressed by more than ``--threshold``
(default 1.5x), so the perf trajectory of the repo stays visible PR over
PR. Benchmarks sharing a result cache report ~0s after the first of their
group; those are compared only when both sides are non-trivial.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"

#: Timings under this many seconds are cache hits of a shared result (see
#: benchmarks/test_bench_figure4.py's _RESULT_CACHE) and carry no signal.
TRIVIAL_S = 0.05


def load_current(path: Path) -> dict:
    """Map fullname -> mean seconds from a pytest-benchmark JSON file."""
    raw = json.loads(path.read_text())
    return {
        bench["fullname"]: {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "group": bench.get("group"),
        }
        for bench in raw["benchmarks"]
    }


def update_baseline(current: dict, raw_path: Path) -> None:
    raw = json.loads(raw_path.read_text())
    snapshot = {
        "note": (
            "Benchmark timing snapshot; regenerate with "
            "benchmarks/compare_baseline.py --update"
        ),
        "machine": raw.get("machine_info", {})
        .get("cpu", {})
        .get("brand_raw", "unknown"),
        "datetime": raw.get("datetime"),
        "benchmarks": {
            name: {
                "mean_s": round(stats["mean_s"], 4),
                "min_s": round(stats["min_s"], 4),
                "group": stats["group"],
            }
            for name, stats in current.items()
        },
    }
    BASELINE_PATH.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"baseline updated: {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when current/baseline mean exceeds this ratio (default 1.5)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite BENCH_baseline.json"
    )
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if args.update:
        update_baseline(current, args.current)
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())["benchmarks"]
    width = max(len(n) for n in set(baseline) | set(current))
    print(f"{'benchmark':<{width}}  {'baseline':>9}  {'current':>9}  ratio")
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        base_mean = baseline.get(name, {}).get("mean_s")
        cur_mean = current.get(name, {}).get("mean_s")
        if base_mean is None or cur_mean is None:
            status = "baseline-only" if cur_mean is None else "new"
            print(f"{name:<{width}}  {'-':>9}  {'-':>9}  ({status})")
            continue
        if base_mean < TRIVIAL_S or cur_mean < TRIVIAL_S:
            print(f"{name:<{width}}  {base_mean:>8.3f}s  {cur_mean:>8.3f}s  (cached)")
            continue
        ratio = cur_mean / base_mean
        marker = ""
        if ratio > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:<{width}}  {base_mean:>8.3f}s  {cur_mean:>8.3f}s  {ratio:5.2f}x{marker}")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond {args.threshold}x")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.exit(0)
