#!/usr/bin/env python
"""Diff a fresh benchmark run against the committed BENCH_baseline.json.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only \
        --benchmark-json=bench_current.json
    python benchmarks/compare_baseline.py bench_current.json

    # refresh the committed snapshot from a fresh run
    python benchmarks/compare_baseline.py bench_current.json --update

Prints a per-benchmark table of baseline vs current mean times and exits
non-zero when any benchmark regressed by more than ``--threshold``
(default 1.5x), so the perf trajectory of the repo stays visible PR over
PR. Benchmarks sharing a result cache report ~0s after the first of their
group; those are compared only when both sides are non-trivial.

When ``$GITHUB_STEP_SUMMARY`` is set (as it is in GitHub Actions), the
same comparison is appended there as a Markdown table, so the timing
deltas show up on the workflow run page; ``--markdown PATH`` writes the
table to an explicit file instead.

``--telemetry PATH`` points at the span-event JSONL the obs benchmarks
drop (``bench_telemetry.jsonl``, written when they run under
``REPRO_OBS=trace``). With ``--update`` the per-span self-time aggregate
is committed alongside the timings; on a gate failure the top regressed
spans (largest self-time growth vs that committed aggregate) are printed
so the table's "what regressed" has a "where" attached.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.analyze import (  # noqa: E402
    diff_aggregates,
    load_trace,
    render_regressions,
    top_regressions,
)
from repro.obs.render import aggregate_spans  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"

#: Timings under this many seconds are cache hits of a shared result (see
#: benchmarks/test_bench_figure4.py's _RESULT_CACHE) and carry no signal.
TRIVIAL_S = 0.05

#: Benchmarks whose name contains this marker measure a process-sharded
#: run whose wall clock depends on the host's core count.
PARALLEL_MARKER = "workers"

#: Cores a parallel-runner benchmark needs for its timing to be
#: comparable across machines (matches WORKERS in test_bench_runner.py).
PARALLEL_MIN_CORES = 4


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def active_kernel_name() -> str:
    """The frequency kernel the benchmarked run dispatched to.

    Resolved through the kernel registry when the package imports (so
    ``auto`` maps to the kernel that actually served the queries), with
    the raw ``$REPRO_KERNEL`` request as the fallback on a bare
    interpreter.
    """
    try:
        from repro.model.kernels import active_kernel

        return active_kernel().name
    except Exception:
        requested = os.environ.get("REPRO_KERNEL", "auto")
        return "numpy" if requested in ("", "auto") else requested


def load_current(path: Path) -> dict:
    """Map fullname -> mean seconds from a pytest-benchmark JSON file.

    Each row carries the active frequency kernel, so numba-kernel runs
    are never gated against a numpy-kernel baseline (and vice versa).
    """
    raw = json.loads(path.read_text())
    kernel = active_kernel_name()
    current = {}
    for bench in raw["benchmarks"]:
        entry = {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "group": bench.get("group"),
            "kernel": kernel,
        }
        peak_rss_mb = bench.get("extra_info", {}).get("peak_rss_mb")
        if peak_rss_mb is not None:
            entry["peak_rss_mb"] = peak_rss_mb
        current[bench["fullname"]] = entry
    return current


def aggregate_telemetry(path: Path) -> dict:
    """Per-span aggregate from a span-event JSONL trace.

    Returns ``{name: {"count", "total_s", "self_s"}}`` where ``self_s``
    is wall time minus the time spent in child spans (clamped at zero —
    concurrent children can sum past their parent). Thin wrapper over
    the :mod:`repro.obs` attribution code — the same functions back
    ``repro-tomography obs diff``, so the benchmark gate and the CLI
    agree on what "self time" means. Point events carry no duration and
    are dropped; a truncated trailing record (killed worker) is skipped
    with a warning on stderr instead of failing the gate.
    """
    events, warnings = load_trace(path)
    for warning in warnings:
        print(f"WARNING {warning}", file=sys.stderr)
    return aggregate_spans([e for e in events if e.get("type") == "span"])


def update_baseline(current: dict, raw_path: Path, spans: dict = None) -> None:
    raw = json.loads(raw_path.read_text())
    snapshot = {
        "note": (
            "Benchmark timing snapshot; regenerate with "
            "benchmarks/compare_baseline.py --update"
        ),
        "machine": raw.get("machine_info", {})
        .get("cpu", {})
        .get("brand_raw", "unknown"),
        "datetime": raw.get("datetime"),
        "benchmarks": {
            name: {
                key: value
                for key, value in (
                    ("mean_s", round(stats["mean_s"], 4)),
                    ("min_s", round(stats["min_s"], 4)),
                    ("group", stats["group"]),
                    ("kernel", stats.get("kernel", "numpy")),
                    ("peak_rss_mb", stats.get("peak_rss_mb")),
                )
                if value is not None
            }
            for name, stats in current.items()
        },
    }
    if spans:
        snapshot["spans"] = {
            name: {
                "count": entry["count"],
                "total_s": round(entry["total_s"], 4),
                "self_s": round(entry["self_s"], 4),
            }
            for name, entry in sorted(spans.items())
        }
    BASELINE_PATH.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"baseline updated: {BASELINE_PATH}")


def compare(baseline: dict, current: dict, threshold: float, cores: int = None) -> list:
    """Per-benchmark comparison rows: (name, base_s, cur_s, ratio, note).

    ``base_s``/``cur_s``/``ratio`` are ``None`` where a side is missing;
    ``note`` is one of ``""``, ``"baseline-only"``, ``"new"``, ``"cached"``,
    ``"skipped: <N cores"``, ``"kernel: <base> vs <cur>"`` or
    ``"REGRESSION"``. A benchmark recorded under a different frequency
    kernel than the baseline's is reported but not gated — the delta
    measures the kernel swap, not a regression (baselines from before the
    kernel field are treated as numpy).

    Parallel-runner benchmarks (name containing ``workers``) are excluded
    from the regression gate when the host has fewer than
    ``PARALLEL_MIN_CORES`` usable cores: their wall clock there measures
    process-pool overhead on a saturated machine, not a regression, and the
    committed baseline may have been recorded with a different core count
    (the original snapshot was recorded on 1 core).
    """
    if cores is None:
        cores = usable_cores()
    rows = []
    for name in sorted(set(baseline) | set(current)):
        base_mean = baseline.get(name, {}).get("mean_s")
        cur_mean = current.get(name, {}).get("mean_s")
        base_kernel = baseline.get(name, {}).get("kernel", "numpy")
        cur_kernel = current.get(name, {}).get("kernel", "numpy")
        if base_mean is None or cur_mean is None:
            note = "baseline-only" if cur_mean is None else "new"
            rows.append((name, base_mean, cur_mean, None, note))
        elif base_kernel != cur_kernel:
            rows.append(
                (
                    name,
                    base_mean,
                    cur_mean,
                    None,
                    f"kernel: {base_kernel} vs {cur_kernel}",
                )
            )
        elif PARALLEL_MARKER in name and cores < PARALLEL_MIN_CORES:
            rows.append(
                (
                    name,
                    base_mean,
                    cur_mean,
                    None,
                    f"skipped: <{PARALLEL_MIN_CORES} cores",
                )
            )
        elif base_mean < TRIVIAL_S or cur_mean < TRIVIAL_S:
            rows.append((name, base_mean, cur_mean, None, "cached"))
        else:
            ratio = cur_mean / base_mean
            note = "REGRESSION" if ratio > threshold else ""
            rows.append((name, base_mean, cur_mean, ratio, note))
    return rows


def collect_rss(baseline: dict, current: dict) -> list:
    """Peak-RSS rows (name, base_mb, cur_mb) — report-only, never gated.

    Memory high-water marks from benchmarks that record
    ``extra_info["peak_rss_mb"]`` (currently the scaling-topology study).
    RSS depends on allocator behaviour and everything the process touched
    before the benchmark, so the trajectory is surfaced PR over PR but a
    delta is never a failure.
    """
    rows = []
    for name in sorted(set(baseline) | set(current)):
        base_mb = baseline.get(name, {}).get("peak_rss_mb")
        cur_mb = current.get(name, {}).get("peak_rss_mb")
        if base_mb is None and cur_mb is None:
            continue
        rows.append((name, base_mb, cur_mb))
    return rows


def render_rss_text(rss_rows: list) -> str:
    lines = ["peak RSS (report-only, never gated):"]
    for name, base_mb, cur_mb in rss_rows:
        base = "-" if base_mb is None else f"{base_mb:.1f}MB"
        cur = "-" if cur_mb is None else f"{cur_mb:.1f}MB"
        lines.append(f"  {name}: baseline {base}, current {cur}")
    return "\n".join(lines)


def render_rss_markdown(rss_rows: list) -> str:
    lines = [
        "### Peak RSS (report-only)",
        "",
        "| benchmark | baseline | current |",
        "| --- | ---: | ---: |",
    ]
    for name, base_mb, cur_mb in rss_rows:
        base = "-" if base_mb is None else f"{base_mb:.1f} MB"
        cur = "-" if cur_mb is None else f"{cur_mb:.1f} MB"
        lines.append(f"| `{name}` | {base} | {cur} |")
    return "\n".join(lines) + "\n"


def collect_skips(rows: list, strict_armed: bool = None) -> list:
    """Everything the regression gate did NOT check, as (subject, reason).

    Covers per-benchmark exclusions (cache hits, core-starved parallel
    runs, kernel mismatches, one-sided rows) and the opt-in strict gates
    (speedup / throughput / strict-win assertions inside the benchmarks
    themselves), which silently downgrade to warnings unless
    ``REPRO_BENCH_STRICT`` is set. Surfacing these is the difference
    between "no regressions" and "nothing was gated".
    """
    if strict_armed is None:
        strict_armed = bool(os.environ.get("REPRO_BENCH_STRICT"))
    skips = []
    for name, base_s, cur_s, ratio, note in rows:
        if ratio is None and note != "REGRESSION":
            skips.append((name, note))
    if not strict_armed:
        skips.append(
            (
                "strict in-benchmark gates (runner speedup, streaming "
                "throughput, mitigation strict-win)",
                "not armed: REPRO_BENCH_STRICT unset",
            )
        )
    return skips


def render_skips_text(skips: list) -> str:
    if not skips:
        return "all benchmarks gated; no skips"
    lines = [f"{len(skips)} gate(s) skipped this run:"]
    for subject, reason in skips:
        lines.append(f"  {subject}: {reason}")
    return "\n".join(lines)


def render_skips_markdown(skips: list) -> str:
    """The skip list as a Markdown section for the workflow summary."""
    lines = ["### Skipped benchmark gates", ""]
    if not skips:
        lines.append("All benchmarks were gated; nothing skipped.")
        return "\n".join(lines) + "\n"
    lines += [
        "These were **not** checked against the baseline this run:",
        "",
        "| what | why |",
        "| --- | --- |",
    ]
    for subject, reason in skips:
        lines.append(f"| `{subject}` | {reason} |")
    return "\n".join(lines) + "\n"


def render_text(rows: list) -> str:
    width = max(len(name) for name, *_ in rows)
    lines = [f"{'benchmark':<{width}}  {'baseline':>9}  {'current':>9}  ratio"]
    for name, base_s, cur_s, ratio, note in rows:
        if base_s is None or cur_s is None:
            lines.append(f"{name:<{width}}  {'-':>9}  {'-':>9}  ({note})")
        elif ratio is None:
            lines.append(f"{name:<{width}}  {base_s:>8.3f}s  {cur_s:>8.3f}s  ({note})")
        else:
            marker = f"  <-- {note}" if note else ""
            lines.append(
                f"{name:<{width}}  {base_s:>8.3f}s  {cur_s:>8.3f}s  "
                f"{ratio:5.2f}x{marker}"
            )
    return "\n".join(lines)


def render_markdown(rows: list, threshold: float) -> str:
    """The comparison as a GitHub-flavoured Markdown table."""
    lines = [
        "### Benchmark timings vs committed baseline",
        "",
        f"Regression threshold: {threshold:.2f}x (timings are informational "
        "on shared runners).",
        "",
        "| benchmark | baseline | current | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, base_s, cur_s, ratio, note in rows:
        base = "-" if base_s is None else f"{base_s:.3f}s"
        cur = "-" if cur_s is None else f"{cur_s:.3f}s"
        shown_ratio = "-" if ratio is None else f"{ratio:.2f}x"
        status = f"**{note}**" if note == "REGRESSION" else (note or "ok")
        lines.append(f"| `{name}` | {base} | {cur} | {shown_ratio} | {status} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when current/baseline mean exceeds this ratio (default 1.5)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite BENCH_baseline.json"
    )
    parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        help="append a Markdown comparison table to this file "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        help="span-event JSONL from the obs benchmarks "
        "(bench_telemetry.jsonl); committed with --update, used to name "
        "the top regressed spans on a gate failure",
    )
    args = parser.parse_args(argv)

    current = load_current(args.current)
    telemetry = None
    if args.telemetry is not None and args.telemetry.exists():
        telemetry = aggregate_telemetry(args.telemetry)
    if args.update:
        update_baseline(current, args.current, spans=telemetry)
        return 0

    baseline_doc = json.loads(BASELINE_PATH.read_text())
    baseline = baseline_doc["benchmarks"]
    rows = compare(baseline, current, args.threshold)
    skips = collect_skips(rows)
    rss_rows = collect_rss(baseline, current)
    print(render_text(rows))
    print()
    print(render_skips_text(skips))
    if rss_rows:
        print()
        print(render_rss_text(rss_rows))

    summary_path = args.markdown
    if summary_path is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        summary_path = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if summary_path is not None:
        with open(summary_path, "a") as handle:
            handle.write(render_markdown(rows, args.threshold))
            handle.write("\n")
            handle.write(render_skips_markdown(skips))
            if rss_rows:
                handle.write("\n")
                handle.write(render_rss_markdown(rss_rows))

    regressions = [name for name, *_, note in rows if note == "REGRESSION"]
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond {args.threshold}x")
        if telemetry is not None and baseline_doc.get("spans"):
            deltas = diff_aggregates(baseline_doc["spans"], telemetry)
            regressed = top_regressions(deltas)
            if regressed:
                print()
                print(render_regressions(regressed))
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        sys.exit(0)
