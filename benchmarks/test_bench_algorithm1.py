"""Benchmark for Algorithm 1's scaling claims (Sections 4 and 5.1).

The naive approach would form ``2^|P*|`` equations ("practically infeasible
for any topology with more than a few tens of paths"); Algorithm 1 forms a
number of equations on the order of the number of unknowns, and the
requested-subset-size knob trades completeness for time.
"""

from __future__ import annotations

import pytest

from repro.experiments.scaling import run_algorithm1_scaling


@pytest.mark.benchmark(group="algorithm1")
def test_algorithm1_scaling(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_algorithm1_scaling(bench_scale, seed=3, subset_sizes=[1, 2]),
        rounds=1,
        iterations=1,
    )
    print()
    print("Algorithm 1 scaling - equations formed vs the naive 2^|P*| bound")
    print(result.to_table())
    for row in result.rows:
        # Massively fewer equations than the naive enumeration.
        assert row.num_equations < 50_000
        assert row.rank <= row.num_equations
        assert row.num_identifiable <= row.num_unknowns
    assert result.rows[0].num_unknowns <= result.rows[1].num_unknowns
