"""Legacy setup shim.

The environment's setuptools lacks the ``wheel`` package, so PEP 517
editable installs fail; this shim enables
``pip install -e . --no-build-isolation --no-use-pep517``. All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
